//! Graph generators.

use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated graph, kept alongside results for
//  reproducibility in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSpec {
    pub vertices: u64,
    pub avg_degree: u64,
    pub seed: u64,
}

/// The paper's workload (§V-B/V-C): a random graph where every vertex
/// connects to `avg_degree` uniformly random vertices. Every vertex has
/// out-degree ≥ 1 (walkers must never strand, §V-C).
pub fn uniform_random(spec: GraphSpec) -> Csr {
    assert!(spec.vertices > 0, "graph needs at least one vertex");
    let n = spec.vertices;
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let d = spec.avg_degree.max(1);
    let mut edges = Vec::with_capacity((n * d) as usize);
    for v in 0..n {
        for _ in 0..d {
            edges.push((v, rng.gen_range(0..n)));
        }
    }
    Csr::from_edges(n, &edges)
}

/// RMAT (Graph500-style) power-law generator with the standard
/// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) partition probabilities. Produces
/// `vertices * avg_degree` edges over `vertices` (rounded up to a power of
/// two internally, then clamped).
///
/// Power-law graphs are the motivating case for GMT: they are "difficult
/// to partition without generating imbalance" (§I).
pub fn rmat(spec: GraphSpec) -> Csr {
    assert!(spec.vertices > 0, "graph needs at least one vertex");
    let n = spec.vertices;
    let scale = 64 - (n - 1).leading_zeros() as u64; // ceil(log2(n))
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let m = n * spec.avg_degree.max(1);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut edges = Vec::with_capacity(m as usize);
    while (edges.len() as u64) < m {
        let (mut s, mut t) = (0u64, 0u64);
        for _ in 0..scale {
            s <<= 1;
            t <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                t |= 1;
            } else if r < a + b + c {
                s |= 1;
            } else {
                s |= 1;
                t |= 1;
            }
        }
        if s < n && t < n {
            edges.push((s, t));
        }
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_has_requested_shape() {
        let g = uniform_random(GraphSpec { vertices: 500, avg_degree: 8, seed: 1 });
        assert_eq!(g.vertices(), 500);
        assert_eq!(g.edges(), 4000);
        g.check_invariants().unwrap();
        for v in 0..500 {
            assert_eq!(g.degree(v), 8);
        }
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        let spec = GraphSpec { vertices: 100, avg_degree: 4, seed: 9 };
        assert_eq!(uniform_random(spec), uniform_random(spec));
        let other = GraphSpec { seed: 10, ..spec };
        assert_ne!(uniform_random(spec), uniform_random(other));
    }

    #[test]
    fn uniform_random_targets_spread_out() {
        let g = uniform_random(GraphSpec { vertices: 1000, avg_degree: 16, seed: 3 });
        // Distinct targets should cover a large share of the vertex set.
        let mut seen = vec![false; 1000];
        for &t in g.targets() {
            seen[t as usize] = true;
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(covered > 900, "only {covered}/1000 vertices are targets");
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(GraphSpec { vertices: 1024, avg_degree: 16, seed: 7 });
        g.check_invariants().unwrap();
        assert_eq!(g.edges(), 1024 * 16);
        // Power law: the top 1% of vertices own far more than 1% of edges.
        let mut degrees: Vec<u64> = (0..1024).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = degrees[..10].iter().sum();
        assert!(
            top as f64 > 0.05 * g.edges() as f64,
            "top-10 vertices hold only {top} of {} edges",
            g.edges()
        );
    }

    #[test]
    fn rmat_deterministic_per_seed() {
        let spec = GraphSpec { vertices: 256, avg_degree: 8, seed: 42 };
        assert_eq!(rmat(spec), rmat(spec));
    }

    #[test]
    fn generators_handle_tiny_graphs() {
        let g = uniform_random(GraphSpec { vertices: 1, avg_degree: 4, seed: 0 });
        assert_eq!(g.vertices(), 1);
        assert_eq!(g.neighbors(0), &[0, 0, 0, 0]);
        let g = rmat(GraphSpec { vertices: 2, avg_degree: 2, seed: 0 });
        assert_eq!(g.vertices(), 2);
    }
}
