//! # gmt-graph — graph structures for the GMT kernels
//!
//! The paper evaluates GMT on graph kernels (BFS, random walks) over
//! randomly generated graphs "with at most 4000 edges per vertex
//! connecting to random vertices" (§V-B). This crate provides:
//!
//! * [`csr`] — an in-memory compressed-sparse-row graph and its builder,
//! * [`gen`] — graph generators: uniform-random (the paper's workload)
//!   and RMAT power-law (Graph500-style, for skew experiments),
//! * [`dist`] — the same CSR laid out in GMT global arrays, block
//!   distributed across the cluster, with task-side accessors.

pub mod csr;
pub mod dist;
pub mod gen;

pub use csr::Csr;
pub use dist::DistGraph;
pub use gen::{rmat, uniform_random, GraphSpec};
