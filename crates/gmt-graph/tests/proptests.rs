//! Property-based tests for graph structures.

use gmt_graph::{rmat, uniform_random, Csr, GraphSpec};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Independent BFS reference (set-based, no queue reuse) to check
/// `Csr::bfs_levels` against.
fn bfs_reference(csr: &Csr, source: u64) -> Vec<u64> {
    let n = csr.vertices() as usize;
    let mut level = vec![u64::MAX; n];
    let mut seen = HashSet::new();
    let mut q = VecDeque::new();
    seen.insert(source);
    level[source as usize] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        for &t in csr.neighbors(v) {
            if seen.insert(t) {
                level[t as usize] = level[v as usize] + 1;
                q.push_back(t);
            }
        }
    }
    level
}

fn arb_edges(max_n: u64) -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (1..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    /// CSR construction from arbitrary edge lists keeps every edge,
    /// satisfies the structural invariants, and `degree` is consistent.
    #[test]
    fn csr_from_arbitrary_edges((n, edges) in arb_edges(100)) {
        let csr = Csr::from_edges(n, &edges);
        csr.check_invariants().unwrap();
        prop_assert_eq!(csr.vertices(), n);
        prop_assert_eq!(csr.edges(), edges.len() as u64);
        // Multiset of edges is preserved.
        let mut built: Vec<(u64, u64)> = (0..n)
            .flat_map(|v| csr.neighbors(v).iter().map(move |&t| (v, t)))
            .collect();
        let mut given = edges.clone();
        built.sort_unstable();
        given.sort_unstable();
        prop_assert_eq!(built, given);
        let total_degree: u64 = (0..n).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(total_degree, csr.edges());
    }

    /// Two BFS implementations agree on arbitrary graphs; levels are
    /// "triangle consistent": a level-l vertex has no neighbor below
    /// level l-1 pointing at it... (checked as: every edge (u,v) gives
    /// level(v) <= level(u) + 1 when u is reached).
    #[test]
    fn bfs_levels_properties((n, edges) in arb_edges(80), src_seed in any::<u64>()) {
        let csr = Csr::from_edges(n, &edges);
        let source = src_seed % n;
        let levels = csr.bfs_levels(source);
        prop_assert_eq!(&levels, &bfs_reference(&csr, source));
        prop_assert_eq!(levels[source as usize], 0);
        for u in 0..n {
            if levels[u as usize] == u64::MAX {
                continue;
            }
            for &v in csr.neighbors(u) {
                prop_assert!(levels[v as usize] <= levels[u as usize] + 1);
            }
        }
        // Levels are contiguous: if some vertex has level l > 0, another
        // has level l-1.
        let reached: Vec<u64> =
            levels.iter().copied().filter(|&l| l != u64::MAX).collect();
        if let Some(&max) = reached.iter().max() {
            for l in 0..max {
                prop_assert!(reached.contains(&l), "gap below level {max} at {l}");
            }
        }
    }

    /// Generators honor their specs for arbitrary parameters.
    #[test]
    fn generators_honor_spec(vertices in 1u64..400, degree in 1u64..16, seed in any::<u64>()) {
        let spec = GraphSpec { vertices, avg_degree: degree, seed };
        let u = uniform_random(spec);
        u.check_invariants().unwrap();
        prop_assert_eq!(u.vertices(), vertices);
        prop_assert_eq!(u.edges(), vertices * degree);
        let r = rmat(spec);
        r.check_invariants().unwrap();
        prop_assert_eq!(r.vertices(), vertices);
        prop_assert_eq!(r.edges(), vertices * degree);
        // Determinism.
        prop_assert_eq!(uniform_random(spec), u);
        prop_assert_eq!(rmat(spec), r);
    }
}
