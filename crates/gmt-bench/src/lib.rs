//! # gmt-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Experiment | Function | Method |
//! |---|---|---|
//! | Table II | [`experiments::table2`] | closed-form network model |
//! | Table III | [`experiments::table3`] | real cycle measurement (`gmt-context`) |
//! | Table IV | [`experiments::table4`] | configuration dump |
//! | Figure 2 | [`experiments::fig2`] | closed form + DES cross-check |
//! | Figure 5 | [`experiments::fig5`] | DES, 2 nodes, task sweep |
//! | Figure 6 | [`experiments::fig6`] | DES, 128 nodes |
//! | Figure 7 | [`experiments::fig7`] | trace-driven DES, BFS weak scaling |
//! | Figure 8 | [`experiments::fig8`] | trace-driven DES, BFS strong scaling |
//! | Figure 9 | [`experiments::fig9`] | DES, GRW weak scaling (GMT vs MPI) |
//! | Figure 10 | [`experiments::fig10`] | DES, CHMA GMT throughput |
//! | Figure 11 | [`experiments::fig11`] | DES, CHMA MPI throughput |
//!
//! Run `cargo run --release -p gmt-bench --bin figures -- <exp|all>`.
//! Criterion benches (`cargo bench`) cover the real-runtime
//! microbenchmarks (context switch, fabric bandwidth, aggregation
//! pipeline, in-process kernels).

pub mod experiments;
