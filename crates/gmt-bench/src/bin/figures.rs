//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p gmt-bench --bin figures -- all
//! cargo run --release -p gmt-bench --bin figures -- table3 fig5
//! ```

use gmt_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table2",
            "table3",
            "table4",
            "fig2",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for name in wanted {
        match name {
            "table2" => drop(exp::table2()),
            "table3" => drop(exp::table3()),
            "table4" => exp::table4(),
            "fig2" => drop(exp::fig2()),
            "fig5" => drop(exp::fig5()),
            "fig6" => drop(exp::fig6()),
            "fig7" => drop(exp::fig7()),
            "fig8" => drop(exp::fig8()),
            "fig9" => drop(exp::fig9()),
            "fig10" => drop(exp::fig10()),
            "fig11" => drop(exp::fig11()),
            "ablations" => drop(exp::ablations()),
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!(
                    "available: table2 table3 table4 fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 ablations all"
                );
                std::process::exit(2);
            }
        }
    }
}
