//! `metrics_report` — runs the paper's three kernels (BFS, GRW, CHMA) on
//! a 4-node in-process cluster and prints a Table III-style observability
//! report per kernel from the runtime's metrics registry: per-thread
//! context-switch counts, the aggregation-buffer occupancy histogram at
//! flush time, and command execution rates by opcode.
//!
//! Built with `--features trace` and run with
//! `GMT_TRACE=chrome:/tmp/run.json`, it additionally leaves a Chrome
//! `trace_event` file per kernel (openable in Perfetto, one lane per
//! worker/helper/comm thread).

use gmt_core::{Cluster, Config, MetricsSnapshot, NodeHandle};
use gmt_graph::{uniform_random, DistGraph, GraphSpec};
use gmt_kernels::chma::{self, ChmaConfig, GmtHashMap};
use gmt_kernels::{bfs, grw};
use std::time::Instant;

const NODES: usize = 4;

fn main() {
    println!("=== GMT metrics report: {NODES}-node in-process cluster ===");
    run_kernel("BFS", |cluster| {
        let csr = uniform_random(GraphSpec { vertices: 4096, avg_degree: 8, seed: 42 });
        let (visited, edges) = cluster.node(0).run(move |ctx| {
            let g = DistGraph::from_csr(ctx, &csr);
            let r = bfs::gmt_bfs(ctx, &g, 0);
            g.free(ctx);
            (r.visited, r.traversed_edges)
        });
        format!("visited {visited} vertices, traversed {edges} edges")
    });
    run_kernel("GRW", |cluster| {
        let csr = uniform_random(GraphSpec { vertices: 2048, avg_degree: 8, seed: 7 });
        let r = cluster.node(0).run(move |ctx| {
            let g = DistGraph::from_csr(ctx, &csr);
            let r = grw::gmt_grw(ctx, &g, 1024, 16, 99);
            g.free(ctx);
            r
        });
        format!("{} walkers x {} steps, {} edges", r.walkers, r.steps_per_walker, r.traversed_edges)
    });
    run_kernel("CHMA", |cluster| {
        let cfg = ChmaConfig { entries: 2048, pool: 512, tasks: 128, steps: 16, seed: 5 };
        let r = cluster.node(0).run(move |ctx| {
            let map = GmtHashMap::alloc(ctx, cfg.entries);
            chma::gmt_chma_populate(ctx, &map, &cfg);
            let r = chma::gmt_chma_access(ctx, &map, &cfg);
            map.free(ctx);
            r
        });
        format!(
            "{} accesses: {} hits, {} misses, {} inserts",
            r.accesses, r.hits, r.misses, r.inserts
        )
    });
}

/// Starts a fresh cluster, runs one kernel, then prints its report.
fn run_kernel(name: &str, body: impl FnOnce(&Cluster) -> String) {
    let config = Config::small();
    let cluster = Cluster::start(NODES, config.clone()).expect("cluster start");
    let t0 = Instant::now();
    let outcome = body(&cluster);
    let elapsed = t0.elapsed().as_secs_f64();
    println!("\n--- {name}: {outcome} ({:.1} ms) ---", elapsed * 1e3);
    report(&cluster, &config, elapsed);
    cluster.shutdown();
}

/// The Table III-style report: one section per node.
fn report(cluster: &Cluster, config: &Config, elapsed_s: f64) {
    for node in 0..NODES {
        let h = cluster.node(node);
        let snap = h.metrics_snapshot();
        println!("node {node}:");
        print_switches(h, config);
        print_occupancy(&snap);
        print_combining(&snap);
        print_batching(&snap);
        print_rates(&snap, elapsed_s);
        print_comm(&snap);
        print_flow(&snap);
    }
}

/// Per-thread context-switch counts (one counter shard per worker).
fn print_switches(h: &NodeHandle, config: &Config) {
    let m = h.metrics();
    let sw = &m.ctx_switches;
    print!("  ctx switches ({} total):", sw.sum());
    for w in 0..config.num_workers {
        print!(" w{w}={}", sw.shard_value(w));
    }
    println!();
}

/// Aggregation-buffer fill level at flush time.
fn print_occupancy(snap: &MetricsSnapshot) {
    let Some(hist) = snap.histogram("agg.flush_fill_bytes") else { return };
    print!("  buffer fill at flush ({} flushes):", hist.count());
    for (i, &c) in hist.counts.iter().enumerate() {
        match hist.bounds.get(i) {
            Some(b) => print!(" <={b}B:{c}"),
            None => print!(" >{}B:{c}", hist.bounds.last().unwrap()),
        }
    }
    let timeouts = snap.counter("agg.timeout_flushes").unwrap_or(0);
    println!(" (deadline-triggered: {timeouts})");
}

/// Merge-at-source combining effectiveness: how many fire-and-forget
/// adds were absorbed before the wire, and into how many `AddN`s.
fn print_combining(snap: &MetricsSnapshot) {
    let hits = snap.counter("agg.combine_hits").unwrap_or(0);
    let flushes = snap.counter("agg.combine_flushes").unwrap_or(0);
    if flushes == 0 {
        return;
    }
    println!(
        "  combining: {} adds merged into {flushes} wire commands ({:.1} adds/cmd)",
        hits + flushes,
        (hits + flushes) as f64 / flushes as f64
    );
}

/// Batched helper datapath effectiveness: same-segment run lengths,
/// segments resolved per buffer, and RMWs saved by same-offset merging.
fn print_batching(snap: &MetricsSnapshot) {
    let buffers = snap.counter("helper.batch.buffers").unwrap_or(0);
    if buffers == 0 {
        return;
    }
    print!("  batching: {buffers} buffers");
    if let Some(h) = snap.histogram("helper.batch.run_len") {
        print!(", run lens");
        print_hist_buckets(h);
    }
    if let Some(h) = snap.histogram("helper.batch.segments_per_buffer") {
        print!(", segments/buffer");
        print_hist_buckets(h);
    }
    let merged = snap.counter("helper.batch.rmw_merged").unwrap_or(0);
    println!(", rmw merged {merged}");
}

/// Prints one histogram's non-empty buckets as ` <=b:count` pairs.
fn print_hist_buckets(hist: &gmt_core::HistogramSnapshot) {
    for (i, &c) in hist.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        match hist.bounds.get(i) {
            Some(b) => print!(" <={b}:{c}"),
            None => print!(" >{}:{c}", hist.bounds.last().unwrap()),
        }
    }
}

/// Command execution rates by opcode (helpers' view).
fn print_rates(snap: &MetricsSnapshot, elapsed_s: f64) {
    let cmds: Vec<&(String, u64)> =
        snap.counters.iter().filter(|(n, v)| n.starts_with("helper.cmd.") && *v > 0).collect();
    if cmds.is_empty() {
        println!("  commands executed: none");
        return;
    }
    let total: u64 = cmds.iter().map(|(_, v)| v).sum();
    print!("  commands executed ({:.0}/s):", total as f64 / elapsed_s);
    for (name, v) in cmds {
        print!(" {}={v}", name.trim_start_matches("helper.cmd."));
    }
    println!();
}

/// Wire-level traffic and reliability behaviour.
fn print_comm(snap: &MetricsSnapshot) {
    println!(
        "  comm: {} buffers / {} B out, {} buffers / {} B in; retransmits {}, acks piggybacked \
         {} standalone {}, dedup hits {}, connections lost {}",
        snap.counter("comm.buffers_sent").unwrap_or(0),
        snap.counter("comm.bytes_sent").unwrap_or(0),
        snap.counter("comm.buffers_recv").unwrap_or(0),
        snap.counter("comm.bytes_recv").unwrap_or(0),
        snap.counter("reliable.retransmits").unwrap_or(0),
        snap.counter("reliable.acks_piggybacked").unwrap_or(0),
        snap.counter("reliable.acks_standalone").unwrap_or(0),
        snap.counter("reliable.dedup_hits").unwrap_or(0),
        snap.counter("net.tcp.conn_lost").unwrap_or(0),
    );
    print_shm(snap);
}

/// Shared-memory ring behaviour (`net.shm.*`), printed only when the
/// node actually ran on the shm transport — every counter is zero (or
/// absent) otherwise.
fn print_shm(snap: &MetricsSnapshot) {
    let wakes = snap.counter("net.shm.doorbell_wakes").unwrap_or(0);
    let suppressed = snap.counter("net.shm.doorbell_suppressed").unwrap_or(0);
    let full_waits = snap.counter("net.shm.full_waits").unwrap_or(0);
    let watermark = snap.counter("net.shm.ring_occ_watermark_bytes").unwrap_or(0);
    let occ: Vec<u64> =
        (0..8).map(|b| snap.counter(&format!("net.shm.ring_occ_bucket{b}")).unwrap_or(0)).collect();
    if wakes + suppressed + full_waits + watermark + occ.iter().sum::<u64>() == 0 {
        return;
    }
    print!(
        "  shm: doorbell wakes {wakes} / suppressed {suppressed}, full-ring waits {full_waits}, \
         ring occupancy watermark {watermark} B, occupancy octiles ["
    );
    for (i, v) in occ.iter().enumerate() {
        print!("{}{v}", if i == 0 { "" } else { " " });
    }
    println!("]");
}

/// Flow-control watermarks: window occupancy at stamp time, the unacked
/// high-water mark, backpressure events and emitter park time.
fn print_flow(snap: &MetricsSnapshot) {
    let holds = snap.counter("net.flow.holds").unwrap_or(0);
    let parks = snap.counter("net.flow.parks").unwrap_or(0);
    let sheds = snap.counter("net.flow.sheds").unwrap_or(0);
    let events = snap.counter("net.flow.backpressure_events").unwrap_or(0);
    let watermark = snap.gauge("net.flow.unacked_watermark").unwrap_or(0);
    print!(
        "  flow: unacked watermark {watermark}, {events} backpressure event(s), {holds} hold(s), \
         {parks} park(s), {sheds} shed(s)"
    );
    if let Some(h) = snap.histogram("net.flow.window") {
        if h.count() > 0 {
            print!(", window occupancy");
            print_hist_buckets(h);
        }
    }
    if let Some(h) = snap.histogram("net.flow.park_ns") {
        if h.count() > 0 {
            print!(", park ns");
            print_hist_buckets(h);
        }
    }
    let dry = snap.counter("agg.pool_dry_waits").unwrap_or(0);
    let deferrals = snap.counter("watchdog.backpressure_deferrals").unwrap_or(0);
    println!("; pool dry waits {dry}, watchdog deferrals {deferrals}");
}
