//! Implementations of every table/figure experiment.
//!
//! Each function prints a paper-style table to stdout and returns the
//! series it printed so tests can assert on shapes. Paper-reported
//! reference values appear in the column headers where the paper states
//! them; EXPERIMENTS.md records the comparison.

use gmt_context::{cycles_now, Coroutine, Resume};
use gmt_net::NetworkModel;
use gmt_sim::analytic::{fig2_gmt_bandwidth_mb_s, table2_rate_mb_s, MpiConfig};
use gmt_sim::workload::{bfs_phases, bfs_trace, trace_edges};
use gmt_sim::{simulate, MachineParams, OpPattern, Phase};

const NET: NetworkModel = NetworkModel::olympus();

/// Scales per-point simulated work so big sweeps stay tractable: enough
/// ops per task to reach steady state, bounded total events.
fn ops_per_task_for(nodes: usize, tasks_per_node: u64, budget: u64) -> u64 {
    (budget / (nodes as u64 * tasks_per_node)).clamp(4, 4096)
}

/// Steady-state extrapolation for cluster sizes / op counts too large to
/// simulate event-by-event.
///
/// * Node count is capped (identical statistical behaviour per node); the
///   per-destination aggregation-buffer capacity is scaled down by the
///   destination-count ratio so buffers fill after the same number of
///   commands per destination as on the real cluster — this preserves the
///   fill-vs-timeout dynamics *and* the smaller-wire-message penalty that
///   causes Figure 6's slight degradation at 128 nodes.
/// * Tasks and ops per task are capped; the simulated per-node operation
///   rate is then applied to the full per-node work to obtain the phase
///   time.
///
/// Returns (extrapolated phase time ns, per-node op throughput ops/s).
fn scaled_phase_time(
    params: MachineParams,
    nodes: usize,
    phase: Phase,
    task_cap: u64,
    seed: u64,
) -> (u64, f64) {
    const MAX_SIM_NODES: usize = 16;
    const OPS_CAP: u64 = 24;
    let sim_nodes = nodes.min(MAX_SIM_NODES);
    let mut p = params;
    if nodes > sim_nodes {
        if let Some(agg) = &mut p.aggregation {
            let scaled = agg.buffer_bytes as u64 * (sim_nodes as u64 - 1) / (nodes as u64 - 1);
            agg.buffer_bytes = scaled.max(4 * agg.cmd_header_bytes as u64) as u32;
        }
    }
    let reduced = Phase {
        tasks_per_node: phase.tasks_per_node.min(task_cap),
        ops_per_task: phase.ops_per_task.min(OPS_CAP),
        ..phase
    };
    let r = gmt_sim::simulate(p, sim_nodes, reduced, seed);
    let senders = reduced.senders.unwrap_or(sim_nodes).min(sim_nodes) as f64;
    let rate_per_node = r.ops_completed as f64 / senders / (r.elapsed_ns.max(1) as f64 / 1e9);
    let work_per_node = (phase.tasks_per_node * phase.ops_per_task) as f64;
    let elapsed = (work_per_node / rate_per_node * 1e9) as u64;
    (elapsed.max(1), rate_per_node)
}

// ---------------------------------------------------------------------
// Table II — MPI transfer rates between two nodes
// ---------------------------------------------------------------------

/// Table II: transfer rate (MB/s) for MPI with 32 processes and with
/// 1/2/4 threads, across message sizes.
pub fn table2() -> Vec<(usize, [f64; 4])> {
    println!("\n=== Table II: MPI transfer rates between 2 nodes (MB/s) ===");
    println!("(paper anchors: 128 B -> 72.26 MB/s, 64 KiB -> 2815.01 MB/s with 32 processes)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "size", "32 procs", "1 thread", "2 threads", "4 threads"
    );
    let mut rows = Vec::new();
    for size in [128usize, 512, 2048, 8192, 32768, 65536] {
        let row = [
            table2_rate_mb_s(&NET, size, MpiConfig::Processes(32)),
            table2_rate_mb_s(&NET, size, MpiConfig::Threads(1)),
            table2_rate_mb_s(&NET, size, MpiConfig::Threads(2)),
            table2_rate_mb_s(&NET, size, MpiConfig::Threads(4)),
        ];
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            size, row[0], row[1], row[2], row[3]
        );
        rows.push((size, row));
    }
    rows
}

// ---------------------------------------------------------------------
// Table III — context switch latency (measured for real)
// ---------------------------------------------------------------------

/// Measures the average one-way context-switch cost in cycles for
/// `tasks` coroutines doing `switches` yields each (the paper's Table III
/// experiment, reproduced with our actual switch).
pub fn measure_ctx_switch(tasks: usize, switches: usize) -> f64 {
    let mut coros: Vec<Coroutine<()>> = (0..tasks)
        .map(|_| {
            Coroutine::new(16 * 1024, move |y| loop {
                y.yield_now();
            })
            .unwrap()
        })
        .collect();
    // Warm up one round.
    for co in &mut coros {
        assert_eq!(co.resume(), Resume::Yielded);
    }
    let start = cycles_now();
    for _ in 0..switches {
        for co in &mut coros {
            let _ = co.resume();
        }
    }
    let cycles = cycles_now().saturating_sub(start);
    // Each resume is a switch in plus a switch out.
    cycles as f64 / (switches * tasks * 2) as f64
}

/// Table III: switch latency (cycles) across task counts and switch
/// counts. Paper: 495–591 cycles.
pub fn table3() -> Vec<(usize, usize, f64)> {
    println!("\n=== Table III: context switch latency (clock cycles), measured ===");
    println!("(paper: 494.56 - 590.91 cycles on 2.1 GHz Opteron 6272)");
    println!("{:>12} {:>8} {:>8} {:>8} {:>10}", "ctx switches", "1 task", "8", "64", "1024");
    let mut out = Vec::new();
    for &switches in &[100usize, 1000] {
        let mut row = Vec::new();
        for &tasks in &[1usize, 8, 64, 1024] {
            let c = measure_ctx_switch(tasks, switches);
            row.push(c);
            out.push((tasks, switches, c));
        }
        println!(
            "{:>12} {:>8.1} {:>8.1} {:>8.1} {:>10.1}",
            switches, row[0], row[1], row[2], row[3]
        );
    }
    out
}

// ---------------------------------------------------------------------
// Table IV — configuration
// ---------------------------------------------------------------------

/// Table IV: the Olympus configuration parameters.
pub fn table4() {
    let c = gmt_core::Config::olympus();
    println!("\n=== Table IV: GMT configuration parameters for Olympus ===");
    println!("{:<28} {}", "NUM_WORKERS", c.num_workers);
    println!("{:<28} {}", "NUM_HELPERS", c.num_helpers);
    println!("{:<28} {}", "NUM_BUF_PER_CHANNEL", c.num_buf_per_channel);
    println!("{:<28} {}", "MAX_NUM_TASKS_PER_WORKER", c.max_tasks_per_worker);
    println!("{:<28} {}", "SIZE_BUFFERS", c.buffer_size);
}

// ---------------------------------------------------------------------
// Figure 2 — GMT bandwidth vs message size, 1 worker, 2 nodes
// ---------------------------------------------------------------------

/// Figure 2: bandwidth between two nodes with one worker and one
/// communication server while varying message size. Paper: up to
/// 2630 MB/s at 64 KiB (vs raw MPI 2815 MB/s).
pub fn fig2() -> Vec<(usize, f64, f64)> {
    println!("\n=== Figure 2: GMT 1-worker bandwidth between 2 nodes (MB/s) ===");
    println!("(paper: 2630 MB/s at 64 KiB vs 2815 MB/s raw MPI)");
    println!("{:>10} {:>14} {:>14}", "size", "model MB/s", "DES MB/s");
    let mut one_worker = MachineParams::gmt();
    one_worker.workers_per_node = 1;
    one_worker.helpers_per_node = 1;
    // Figure 2 streams data as fast as one worker can: the per-command
    // cost here is encode+copy only (no blocked-task switching).
    one_worker.worker_op_ns = 300;
    let mut rows = Vec::new();
    for size in [64usize, 256, 1024, 4096, 16384, 65536] {
        let model = fig2_gmt_bandwidth_mb_s(&NET, size, 65536, 32, 300);
        // DES: enough concurrent "streaming" chunks to keep the pipe full.
        let tasks = 512u64;
        let ops = ops_per_task_for(2, tasks, 1 << 20);
        let r = simulate(
            one_worker,
            2,
            Phase::one_sender(tasks, ops, OpPattern::remote_put(size as u32)),
            42,
        );
        println!("{:>10} {:>14.1} {:>14.1}", size, model, r.payload_mb_s());
        rows.push((size, model, r.payload_mb_s()));
    }
    rows
}

// ---------------------------------------------------------------------
// Figures 5/6 — put transfer rates vs concurrency
// ---------------------------------------------------------------------

fn put_sweep(nodes: usize, label: &str) -> Vec<(u64, u32, f64)> {
    println!("\n=== {label}: put transfer rates, {nodes} nodes, increasing tasks (MB/s) ===");
    print!("{:>8}", "tasks");
    let sizes = [8u32, 16, 32, 64, 128];
    for s in sizes {
        print!(" {:>9}B", s);
    }
    println!();
    let mut rows = Vec::new();
    for tasks in [1024u64, 2048, 4096, 8192, 15360] {
        print!("{tasks:>8}");
        for size in sizes {
            let phase = Phase::one_sender(tasks, 4096, OpPattern::remote_put(size));
            let (_, rate) = scaled_phase_time(MachineParams::gmt(), nodes, phase, u64::MAX, 7);
            let bw = rate * size as f64 / 1e6;
            print!(" {bw:>10.2}");
            rows.push((tasks, size, bw));
        }
        println!();
    }
    // MPI reference line (fine-grained sends, 32 processes).
    print!("{:>8}", "MPI-32p");
    for size in sizes {
        let phase = Phase::one_sender(32, 4096, OpPattern::remote_put(size));
        let (_, rate) = scaled_phase_time(MachineParams::mpi(), nodes, phase, u64::MAX, 7);
        print!(" {:>10.2}", rate * size as f64 / 1e6);
    }
    println!();
    rows
}

/// Figure 5: put transfer rates between 2 nodes while increasing
/// concurrency. Paper anchors: 8 B — 8.55 MB/s at 1024 tasks,
/// 72.48 MB/s at 15360; 128 B at 15360 tasks ≈ 1 GB/s vs MPI 72.26 MB/s.
pub fn fig5() -> Vec<(u64, u32, f64)> {
    put_sweep(2, "Figure 5")
}

/// Figure 6: the same sweep on 128 nodes (slight degradation; 16 B:
/// 139.78 MB/s vs MPI 9.63 MB/s).
pub fn fig6() -> Vec<(u64, u32, f64)> {
    put_sweep(128, "Figure 6")
}

// ---------------------------------------------------------------------
// Figures 7/8 — BFS scaling
// ---------------------------------------------------------------------

/// Shared BFS trace: a real traversal of a scaled-down proxy graph whose
/// level structure is then scaled up (trace-driven simulation).
fn proxy_trace(vertices: u64, degree: u64) -> Vec<gmt_sim::workload::BfsLevel> {
    let csr = gmt_graph::uniform_random(gmt_graph::GraphSpec {
        vertices,
        avg_degree: degree,
        seed: 20140519, // IPDPS'14 started May 19 2014; any fixed seed works
    });
    bfs_trace(&csr, 0)
}

/// Figure 7: GMT BFS weak scaling — 1M vertices (≈2000 avg degree in the
/// paper's largest run) per node; y-axis MTEPS.
pub fn fig7() -> Vec<(usize, f64)> {
    println!("\n=== Figure 7: GMT BFS weak scaling (MTEPS) ===");
    println!("(paper: flat-to-rising MTEPS as nodes and graph grow together)");
    println!("{:>6} {:>14} {:>12}", "nodes", "vertices", "MTEPS");
    // Proxy: 64k vertices, degree 64; scaled so each node contributes
    // ~1M vertices and the paper's ~2000 average degree.
    let trace = proxy_trace(65_536, 64);
    let degree_scale = 2000 / 64;
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let vertex_scale = (1_000_000 / 65_536 + 1) * nodes as u64;
        let scale = vertex_scale * degree_scale;
        let phases = bfs_phases(&trace, scale, nodes, 2000, 15 * 1024);
        let total_ns: u64 = phases
            .iter()
            .map(|&ph| scaled_phase_time(MachineParams::gmt(), nodes, ph, 4096, 3).0)
            .sum();
        let edges = trace_edges(&trace) * scale;
        let mteps = edges as f64 * 1e3 / total_ns as f64;
        println!("{:>6} {:>14} {:>12.1}", nodes, 65_536 * vertex_scale, mteps);
        rows.push((nodes, mteps));
    }
    rows
}

/// Figure 8: BFS strong scaling on a fixed 10M-vertex / 2.5B-edge graph:
/// GMT vs UPC vs Cray XMT.
pub fn fig8() -> Vec<(usize, f64, f64, f64)> {
    println!("\n=== Figure 8: BFS strong scaling, 10M vertices / 2.5B edges (MTEPS) ===");
    println!(
        "(paper: GMT highest on commodity cluster; XMT competitive; UPC flat, stops >16 nodes)"
    );
    println!("{:>6} {:>12} {:>12} {:>12}", "nodes", "GMT", "UPC", "XMT");
    let trace = proxy_trace(65_536, 64);
    // Scale to 10M vertices, degree 250: vertices x152, degree x ~3.9.
    let scale = 152 * 4;
    let edges = trace_edges(&trace) * scale;
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mteps = |params: MachineParams, cap: u64| -> f64 {
            let phases = bfs_phases(&trace, scale, nodes, 250, cap);
            let total_ns: u64 =
                phases.iter().map(|&ph| scaled_phase_time(params, nodes, ph, 4096, 5).0).sum();
            edges as f64 * 1e3 / total_ns as f64
        };
        let gmt = mteps(MachineParams::gmt(), 15 * 1024);
        let upc = mteps(MachineParams::upc(), 32);
        let xmt = mteps(MachineParams::xmt(), 128);
        println!("{:>6} {:>12.1} {:>12.1} {:>12.1}", nodes, gmt, upc, xmt);
        rows.push((nodes, gmt, upc, xmt));
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 9 — Graph Random Walk weak scaling
// ---------------------------------------------------------------------

/// Figure 9: GRW weak scaling, GMT vs MPI (log scale in the paper; GMT
/// is one or more orders of magnitude faster).
pub fn fig9() -> Vec<(usize, f64, f64)> {
    println!("\n=== Figure 9: Graph Random Walk weak scaling (MTEPS) ===");
    println!("(paper: GMT one or more orders of magnitude above MPI)");
    println!("{:>6} {:>12} {:>12} {:>8}", "nodes", "GMT", "MPI", "ratio");
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8, 16, 32, 64, 128] {
        // V/2 walkers per the paper; scaled-down per-node counts keep the
        // event counts tractable while preserving steady state.
        let walkers_per_node = 4096u64;
        let length = 16u64;
        let phase = gmt_sim::workload::grw_phase(walkers_per_node * nodes as u64, length, nodes);
        let work = (phase.tasks_per_node * phase.ops_per_task) as f64;
        let (g_ns, _) = scaled_phase_time(MachineParams::gmt(), nodes, phase, 4096, 9);
        // MPI: 32 blocking processes per node walk with fine-grained
        // delegation (one request/reply per remote hop).
        let mpi_phase = Phase::all_nodes(32, (work as u64 / 32).max(1), phase.pattern);
        let (m_ns, _) = scaled_phase_time(MachineParams::mpi(), nodes, mpi_phase, 4096, 9);
        // MTEPS per cluster: each walker step = 1 edge; ops = 2 per step.
        let edges = work * nodes as f64 / 2.0;
        let g_mteps = edges * 1e3 / g_ns as f64;
        let m_mteps = edges * 1e3 / m_ns as f64;
        println!("{:>6} {:>12.1} {:>12.1} {:>8.1}", nodes, g_mteps, m_mteps, g_mteps / m_mteps);
        rows.push((nodes, g_mteps, m_mteps));
    }
    rows
}

// ---------------------------------------------------------------------
// Figures 10/11 — CHMA throughput
// ---------------------------------------------------------------------

/// Figure 10: CHMA throughput for GMT (millions of accesses/s) while
/// varying nodes, concurrent tasks W and steps L.
pub fn fig10() -> Vec<(usize, u64, u64, f64)> {
    println!("\n=== Figure 10: CHMA GMT throughput (M accesses/s) ===");
    println!("{:>6} {:>8} {:>6} {:>14}", "nodes", "W", "L", "Maccesses/s");
    let mut rows = Vec::new();
    for nodes in [2usize, 8, 32, 128] {
        for (w, l) in [(2048u64, 32u64), (8192, 32), (8192, 128)] {
            let phase = gmt_sim::workload::chma_phase(w * nodes as u64, l, 0.5, nodes);
            let (ns, _) = scaled_phase_time(MachineParams::gmt(), nodes, phase, 4096, 11);
            // Accesses = steps; ops per step = 2.5 at 50% hit rate.
            let accesses = (w * nodes as u64 * l) as f64;
            let maccess = accesses * 1e3 / ns as f64;
            println!("{:>6} {:>8} {:>6} {:>14.2}", nodes, w, l, maccess);
            rows.push((nodes, w, l, maccess));
        }
    }
    rows
}

/// Figure 11: CHMA throughput for MPI — two or more orders of magnitude
/// below GMT (fine-grained blocking request/reply per access).
pub fn fig11() -> Vec<(usize, u64, f64)> {
    println!("\n=== Figure 11: CHMA MPI throughput (M accesses/s) ===");
    println!("(paper: 2+ orders of magnitude below GMT)");
    println!("{:>6} {:>8} {:>6} {:>14}", "nodes", "W", "L", "Maccesses/s");
    let mut rows = Vec::new();
    for nodes in [2usize, 8, 32, 128] {
        let (w, l) = (32u64, 128u64); // one process per core
        let phase = gmt_sim::workload::chma_phase(w * nodes as u64, l, 0.5, nodes);
        let (ns, _) = scaled_phase_time(MachineParams::mpi(), nodes, phase, 4096, 13);
        let accesses = (w * nodes as u64 * l) as f64;
        let maccess = accesses * 1e3 / ns as f64;
        println!("{:>6} {:>8} {:>6} {:>14.2}", nodes, w, l, maccess);
        rows.push((nodes, w, maccess));
    }
    rows
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §11) — design choices the paper fixed, swept
// ---------------------------------------------------------------------

/// Ablation studies over the GMT machine model:
/// aggregation on/off, buffer size, flush timeout, worker/helper split.
pub fn ablations() -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let phase = |tasks: u64| Phase::one_sender(tasks, 24, OpPattern::remote_put(8));

    println!("\n=== Ablation A: aggregation on/off (8 B puts, 2 nodes, MB/s) ===");
    println!("{:>8} {:>14} {:>14} {:>8}", "tasks", "aggregated", "per-message", "gain");
    for tasks in [256u64, 4096, 15360] {
        let on = simulate(MachineParams::gmt(), 2, phase(tasks), 3).payload_mb_s();
        let off = simulate(MachineParams::gmt_no_aggregation(), 2, phase(tasks), 3).payload_mb_s();
        println!("{:>8} {:>14.2} {:>14.2} {:>7.1}x", tasks, on, off, on / off);
        out.push((format!("agg_on_{tasks}"), on));
        out.push((format!("agg_off_{tasks}"), off));
    }

    println!("\n=== Ablation B: aggregation buffer size (8 B puts, 4096 tasks, MB/s) ===");
    println!("(Table IV fixes 64 KiB)");
    println!("{:>10} {:>14} {:>12}", "buffer", "MB/s", "messages");
    for buf in [1024u32, 4096, 16384, 65536, 262144] {
        let mut p = MachineParams::gmt();
        p.aggregation.as_mut().unwrap().buffer_bytes = buf;
        let r = simulate(p, 2, phase(4096), 3);
        println!("{:>10} {:>14.2} {:>12}", buf, r.payload_mb_s(), r.messages);
        out.push((format!("buffer_{buf}"), r.payload_mb_s()));
    }

    println!("\n=== Ablation C: flush timeout (8 B puts, MB/s) ===");
    println!("{:>12} {:>14} {:>14}", "timeout us", "256 tasks", "15360 tasks");
    for timeout_us in [50u64, 150, 450, 1350, 4050] {
        let mut p = MachineParams::gmt();
        p.aggregation.as_mut().unwrap().timeout_ns = timeout_us * 1000;
        let low = simulate(p, 2, phase(256), 3).payload_mb_s();
        let high = simulate(p, 2, phase(15360), 3).payload_mb_s();
        println!("{:>12} {:>14.2} {:>14.2}", timeout_us, low, high);
        out.push((format!("timeout_{timeout_us}_low"), low));
        out.push((format!("timeout_{timeout_us}_high"), high));
    }

    println!("\n=== Ablation D: worker/helper split, 30 specialized threads (MB/s) ===");
    println!("(Table IV fixes 15/15; symmetric traffic needs symmetric service)");
    println!("{:>14} {:>14}", "workers/helpers", "MB/s");
    for workers in [5usize, 10, 15, 20, 25] {
        let mut p = MachineParams::gmt();
        p.workers_per_node = workers;
        p.helpers_per_node = 30 - workers;
        // Symmetric all-nodes traffic so helpers matter.
        let ph = Phase::all_nodes(4096, 24, OpPattern::remote_put(8));
        let r = simulate(p, 2, ph, 3);
        println!("{:>7}/{:<6} {:>14.2}", workers, 30 - workers, r.payload_mb_s());
        out.push((format!("split_{workers}"), r.payload_mb_s()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_switch_measurement_is_plausible() {
        // A few hundred cycles, like the paper's Table III; virtualized
        // hosts can be slower, so accept a generous window.
        let c = measure_ctx_switch(8, 200);
        assert!(c > 20.0, "implausibly fast switch: {c} cycles");
        assert!(c < 20_000.0, "implausibly slow switch: {c} cycles");
    }

    #[test]
    fn table2_anchor_points() {
        let rows = table2();
        let (_, r128) = rows[0];
        assert!((r128[0] - 72.26).abs() / 72.26 < 0.15, "128B 32-proc: {}", r128[0]);
        let (_, r64k) = rows[rows.len() - 1];
        assert!((r64k[0] - 2815.0).abs() / 2815.0 < 0.15, "64KiB 32-proc: {}", r64k[0]);
    }

    #[test]
    fn fig5_shape_small_scale() {
        // Shape assertions on a reduced sweep (full sweep runs in the
        // figures binary): more tasks => more bandwidth; saturation near
        // the paper's 72 MB/s for 8-byte puts.
        let bw = |tasks: u64| {
            simulate(
                MachineParams::gmt(),
                2,
                Phase::one_sender(tasks, 16, OpPattern::remote_put(8)),
                7,
            )
            .payload_mb_s()
        };
        let low = bw(1024);
        let high = bw(15360);
        assert!(high > low * 3.0, "no concurrency gain: {low} -> {high}");
        assert!((5.0..30.0).contains(&low), "1024-task point: {low} MB/s (paper 8.55)");
        assert!((40.0..110.0).contains(&high), "15360-task point: {high} MB/s (paper 72.48)");
    }
}
