//! Table II / Figure 2 microbenchmark: fabric message throughput vs
//! message size (the in-process analogue of the paper's OSU runs), plus
//! the calibrated cost-model rates for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmt_net::{DeliveryMode, Fabric, NetworkModel};

fn bench_fabric_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_stream");
    for &size in &[8usize, 128, 4096, 65536] {
        g.throughput(Throughput::Bytes(64 * size as u64));
        g.bench_with_input(BenchmarkId::new("send_recv_64msgs", size), &size, |b, &size| {
            let fabric = Fabric::new(2, DeliveryMode::Instant);
            let tx = fabric.endpoint(0);
            let rx = fabric.endpoint(1);
            b.iter(|| {
                for _ in 0..64 {
                    tx.send(1, 0, vec![0u8; size]).unwrap();
                }
                for _ in 0..64 {
                    std::hint::black_box(rx.recv().unwrap());
                }
            });
        });
    }
    g.finish();
}

fn bench_model_math(c: &mut Criterion) {
    // The closed-form rates are cheap; benching them documents them in
    // the criterion report alongside the real fabric numbers.
    let model = NetworkModel::olympus();
    c.bench_function("model_windowed_bandwidth_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for size in [8usize, 128, 4096, 65536] {
                acc += std::hint::black_box(model.windowed_bandwidth(size, 4));
            }
            std::hint::black_box(acc)
        });
    });
}

criterion_group!(benches, bench_fabric_stream, bench_model_math);
criterion_main!(benches);
