//! Table III microbenchmark: context-switch latency vs task count.
//!
//! Measures the real cost of the custom context switch (resume + yield
//! pair) while varying how many coroutine tasks a worker multiplexes —
//! the cache effects of more live contexts are exactly what the paper's
//! Table III quantifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmt_context::{Coroutine, Resume};

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctx_switch");
    for &tasks in &[1usize, 8, 64, 1024] {
        g.throughput(Throughput::Elements(2 * tasks as u64)); // 2 switches per resume
        g.bench_with_input(BenchmarkId::new("round_robin", tasks), &tasks, |b, &tasks| {
            let mut coros: Vec<Coroutine<()>> = (0..tasks)
                .map(|_| {
                    Coroutine::new(16 * 1024, |y| loop {
                        y.yield_now();
                    })
                    .unwrap()
                })
                .collect();
            // Warm-up pass so every context is bootstrapped.
            for co in &mut coros {
                assert_eq!(co.resume(), Resume::Yielded);
            }
            b.iter(|| {
                for co in &mut coros {
                    std::hint::black_box(co.resume());
                }
            });
        });
    }
    g.finish();
}

fn bench_create_destroy(c: &mut Criterion) {
    c.bench_function("coroutine_create_run_destroy", |b| {
        b.iter(|| {
            let mut co = Coroutine::new(16 * 1024, |_y| 1u64).unwrap();
            assert_eq!(co.resume(), Resume::Finished);
            std::hint::black_box(co.take_result())
        });
    });
    c.bench_function("coroutine_create_with_recycled_stack", |b| {
        let mut stack = Some(gmt_context::Stack::new(16 * 1024).unwrap());
        b.iter(|| {
            let mut co = Coroutine::with_stack(stack.take().unwrap(), |_y| 1u64);
            assert_eq!(co.resume(), Resume::Finished);
            stack = Some(co.into_stack());
        });
    });
}

criterion_group!(benches, bench_switch, bench_create_destroy);
criterion_main!(benches);
