//! End-to-end kernel benchmarks on the *real* runtime (in-process
//! clusters): GMT vs the MPI-style baselines on small instances of the
//! paper's three kernels. The big-cluster scaling figures come from the
//! DES (`figures` binary); these benches exercise the actual code paths.

use criterion::{criterion_group, criterion_main, Criterion};
use gmt_core::{Cluster, Config};
use gmt_graph::{uniform_random, DistGraph, GraphSpec};
use gmt_kernels::bfs::gmt_bfs;
use gmt_kernels::bfs_mpi::{mpi_bfs, BaselineMode};
use gmt_kernels::chma::{gmt_chma_access, gmt_chma_populate, ChmaConfig, GmtHashMap};
use gmt_kernels::chma_mpi::mpi_chma;
use gmt_kernels::grw::gmt_grw;
use gmt_kernels::grw_mpi::{mpi_grw, GrwMode};

fn small_graph() -> gmt_graph::Csr {
    uniform_random(GraphSpec { vertices: 400, avg_degree: 6, seed: 1234 })
}

fn bench_bfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("bfs_400v_2nodes");
    g.sample_size(10);
    let csr = small_graph();
    let csr2 = csr.clone();
    g.bench_function("gmt", move |b| {
        let cluster = Cluster::start(2, Config::small()).unwrap();
        let csr = csr2.clone();
        let graph = cluster.node(0).run(move |ctx| DistGraph::from_csr(ctx, &csr));
        b.iter(|| {
            cluster.node(0).run(move |ctx| std::hint::black_box(gmt_bfs(ctx, &graph, 0).visited))
        });
        cluster.node(0).run(move |ctx| graph.free(ctx));
        cluster.shutdown();
    });
    let csr2 = csr.clone();
    g.bench_function("mpi_fine_grained", move |b| {
        b.iter(|| std::hint::black_box(mpi_bfs(&csr2, 2, 0, BaselineMode::FineGrained)))
    });
    let csr2 = csr.clone();
    g.bench_function("mpi_aggregated", move |b| {
        b.iter(|| std::hint::black_box(mpi_bfs(&csr2, 2, 0, BaselineMode::Aggregated)))
    });
    g.finish();
}

fn bench_grw(c: &mut Criterion) {
    let mut g = c.benchmark_group("grw_200walkers_len8_2nodes");
    g.sample_size(10);
    let csr = small_graph();
    let csr2 = csr.clone();
    g.bench_function("gmt", move |b| {
        let cluster = Cluster::start(2, Config::small()).unwrap();
        let csr = csr2.clone();
        let graph = cluster.node(0).run(move |ctx| DistGraph::from_csr(ctx, &csr));
        b.iter(|| {
            cluster
                .node(0)
                .run(move |ctx| std::hint::black_box(gmt_grw(ctx, &graph, 200, 8, 5).checksum))
        });
        cluster.node(0).run(move |ctx| graph.free(ctx));
        cluster.shutdown();
    });
    let csr2 = csr.clone();
    g.bench_function("mpi_fine_grained", move |b| {
        b.iter(|| std::hint::black_box(mpi_grw(&csr2, 2, 200, 8, 5, GrwMode::FineGrained)))
    });
    let csr2 = csr.clone();
    g.bench_function("mpi_aggregated", move |b| {
        b.iter(|| std::hint::black_box(mpi_grw(&csr2, 2, 200, 8, 5, GrwMode::Aggregated)))
    });
    g.finish();
}

fn bench_chma(c: &mut Criterion) {
    let mut g = c.benchmark_group("chma_2nodes");
    g.sample_size(10);
    let cfg = ChmaConfig { entries: 512, pool: 256, tasks: 16, steps: 32, seed: 77 };
    g.bench_function("gmt", move |b| {
        let cluster = Cluster::start(2, Config::small()).unwrap();
        let map = cluster.node(0).run(move |ctx| {
            let map = GmtHashMap::alloc(ctx, cfg.entries);
            gmt_chma_populate(ctx, &map, &cfg);
            map
        });
        b.iter(|| {
            cluster
                .node(0)
                .run(move |ctx| std::hint::black_box(gmt_chma_access(ctx, &map, &cfg).hits))
        });
        cluster.node(0).run(move |ctx| map.free(ctx));
        cluster.shutdown();
    });
    g.bench_function("mpi_fine_grained", move |b| {
        b.iter(|| std::hint::black_box(mpi_chma(&cfg, 2)))
    });
    g.finish();
}

criterion_group!(benches, bench_bfs, bench_grw, bench_chma);
criterion_main!(benches);
