//! Remote-operation datapath microbenchmarks on a 2-node in-process
//! cluster: blocking put and get storms, plus the headline case for
//! command combining — a fire-and-forget atomic-add storm where many
//! tasks hammer a few hot remote counters.
//!
//! `atomic_add_storm` runs twice, with the merge-at-source combining
//! table on (`combine_window` at its default) and off (`combine_window
//! = 0`). With combining on, adds from one task to the same cell
//! collapse into a single `AddN` on the wire and come back as one entry
//! in a vectorized `AckN`, so the on/off delta is the end-to-end value
//! of the whole PR's datapath work. EXPERIMENTS.md records the measured
//! ablation; the acceptance target is >= 2x for `combining_on` over
//! `combining_off`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gmt_core::{Cluster, Config, Distribution, SpawnPolicy};

const ELEMS: u64 = 2048;
/// Hot counters for the add storm: few cells, many adds per cell, so
/// the combining table gets real merge opportunities.
const HOT_CELLS: u64 = 8;
/// Adds in the storm — enough to amortize the per-iteration setup
/// (collective alloc/free, task spawns) so the measurement is the add
/// datapath itself.
const STORM_ADDS: u64 = 16384;
/// Tasks in the add storm; each performs `STORM_ADDS / STORM_TASKS`
/// adds before awaiting completion — the natural shape for
/// fire-and-forget updates (and the window combining needs to merge
/// anything).
const STORM_TASKS: u64 = 32;

fn put_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(ELEMS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, ELEMS, 32, move |ctx, i| {
            ctx.put_value::<u64>(&arr, i, i).unwrap();
        });
        ctx.free(arr);
    });
}

fn get_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(ELEMS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, ELEMS, 32, move |ctx, i| {
            let _ = ctx.get_value::<u64>(&arr, i).unwrap();
        });
        ctx.free(arr);
    });
}

fn atomic_add_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(HOT_CELLS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, STORM_TASKS, 1, move |ctx, t| {
            let per_task = STORM_ADDS / STORM_TASKS;
            for k in 0..per_task {
                ctx.atomic_add_nb(&arr, ((t * per_task + k) % HOT_CELLS) * 8, 1);
            }
            ctx.wait_commands().unwrap();
        });
        ctx.free(arr);
    });
}

fn bench_remote_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("remote_ops");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ELEMS));
    for (name, f) in
        [("put_storm", put_storm as fn(&Cluster)), ("get_storm", get_storm as fn(&Cluster))]
    {
        g.bench_function(name, |b| {
            let cluster = Cluster::start(2, Config::small()).unwrap();
            b.iter(|| f(&cluster));
            cluster.shutdown();
        });
    }
    g.throughput(Throughput::Elements(STORM_ADDS));
    let default_window = Config::small().combine_window;
    for (name, combine_window) in
        [("atomic_add_storm/combining_on", default_window), ("atomic_add_storm/combining_off", 0)]
    {
        g.bench_function(name, |b| {
            let config = Config { combine_window, ..Config::small() };
            let cluster = Cluster::start(2, config).unwrap();
            b.iter(|| atomic_add_storm(&cluster));
            cluster.shutdown();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_remote_ops);
criterion_main!(benches);
