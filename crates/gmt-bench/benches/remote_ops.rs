//! Remote-operation datapath microbenchmarks on a 2-node in-process
//! cluster: blocking put and get storms (the put storm also run as a
//! flow-window ablation — off / 8 / 32 — to price the credit machinery
//! on a healthy link), mixed-opcode and get-heavy storms for the batched
//! helper datapath, plus the headline case for command combining — a
//! fire-and-forget atomic-add storm where many tasks hammer a few hot
//! remote counters.
//!
//! `atomic_add_storm` runs three ways:
//!
//! * `combining_on` — merge-at-source combining table on
//!   (`combine_window` at its default), batched helper apply on.
//! * `combining_off` — combining off (`combine_window = 0`), batched
//!   helper apply on: every add crosses the wire individually and the
//!   receive side does the merging (`atomic_add_batch` collapses
//!   same-cell runs into one RMW, acks come back in one `AckN`).
//! * `batch_off` — combining off *and* `batch_apply = false`: the
//!   scalar one-command-at-a-time helper loop, one segment resolution
//!   and one `AtomicReply` per add.
//!
//! The `combining_off` / `batch_off` delta is the end-to-end value of
//! the batched receive pipeline alone; `combining_on` / `combining_off`
//! is the value of merging at the source. EXPERIMENTS.md records the
//! measured ablations; acceptance targets are >= 2x for `combining_on`
//! over `combining_off` and >= 1.3x for `combining_off` over
//! `batch_off`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gmt_core::{Cluster, Config, Distribution, SpawnPolicy};

const ELEMS: u64 = 2048;
/// Hot counters for the add storm: few cells, many adds per cell, so
/// the combining table gets real merge opportunities.
const HOT_CELLS: u64 = 8;
/// Adds in the storm — enough to amortize the per-iteration setup
/// (collective alloc/free, task spawns) so the measurement is the add
/// datapath itself.
const STORM_ADDS: u64 = 16384;
/// Tasks in the add storm; each performs `STORM_ADDS / STORM_TASKS`
/// adds before awaiting completion — the natural shape for
/// fire-and-forget updates (and the window combining needs to merge
/// anything).
const STORM_TASKS: u64 = 32;
/// Operations in the mixed and get-heavy storms.
const MIXED_OPS: u64 = 8192;

fn put_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(ELEMS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, ELEMS, 32, move |ctx, i| {
            ctx.put_value::<u64>(&arr, i, i).unwrap();
        });
        ctx.free(arr);
    });
}

fn get_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(ELEMS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, ELEMS, 32, move |ctx, i| {
            let _ = ctx.get_value::<u64>(&arr, i).unwrap();
        });
        ctx.free(arr);
    });
}

fn atomic_add_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(HOT_CELLS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, STORM_TASKS, 1, move |ctx, t| {
            let per_task = STORM_ADDS / STORM_TASKS;
            for k in 0..per_task {
                ctx.atomic_add_nb(&arr, ((t * per_task + k) % HOT_CELLS) * 8, 1);
            }
            ctx.wait_commands().unwrap();
        });
        ctx.free(arr);
    });
}

/// Every batchable opcode in flight at once across two arrays: buffers
/// reach the helper carrying interleaved puts, gets, fire-and-forget
/// adds and cas — the bucketing stage has to split them by class and
/// segment instead of riding one long run.
fn mixed_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let data = ctx.alloc(ELEMS * 8, Distribution::Remote);
        let counters = ctx.alloc(HOT_CELLS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, STORM_TASKS, 1, move |ctx, t| {
            let per_task = MIXED_OPS / STORM_TASKS;
            for k in 0..per_task {
                let i = (t * per_task + k) % ELEMS;
                match k % 4 {
                    0 => ctx.put_value_nb::<u64>(&data, i, i),
                    1 => ctx.atomic_add_nb(&counters, (i % HOT_CELLS) * 8, 1),
                    2 => {
                        let _ = ctx.get_value::<u64>(&data, i).unwrap();
                    }
                    _ => {
                        let _ = ctx.atomic_cas(&counters, (i % HOT_CELLS) * 8, 0, 0).unwrap();
                    }
                }
            }
            ctx.wait_commands().unwrap();
        });
        ctx.free(data);
        ctx.free(counters);
    });
}

/// Get-dominated traffic: overlapped non-blocking gathers, so helper
/// buffers arrive as long same-segment `Get` runs and the reply side
/// streams `GetReply`s through one sink reservation per run.
fn get_heavy_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(ELEMS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, STORM_TASKS, 1, move |ctx, t| {
            let per_task = MIXED_OPS / STORM_TASKS;
            let indices: Vec<u64> = (0..per_task).map(|k| (t * per_task + k) % ELEMS).collect();
            let _ = ctx.gather::<u64>(&arr, &indices).unwrap();
        });
        ctx.free(arr);
    });
}

fn bench_remote_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("remote_ops");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ELEMS));
    for (name, f) in
        [("put_storm", put_storm as fn(&Cluster)), ("get_storm", get_storm as fn(&Cluster))]
    {
        g.bench_function(name, |b| {
            let cluster = Cluster::start(2, Config::small()).unwrap();
            b.iter(|| f(&cluster));
            cluster.shutdown();
        });
    }
    // Flow-window ablation on the blocking put storm: `flow_off` removes
    // the in-flight cap entirely (the pre-flow-control datapath), 8 is a
    // window tight enough to bind under load, 32 is the default. On a
    // healthy in-process link the three must be within noise of each
    // other — the cost of the credit machinery itself — which is what the
    // bench gate holds the default to.
    for (name, flow_window) in
        [("put_storm/flow_off", 0usize), ("put_storm/flow_8", 8), ("put_storm/flow_32", 32)]
    {
        g.bench_function(name, |b| {
            let config = Config { flow_window, ..Config::small() };
            let cluster = Cluster::start(2, config).unwrap();
            b.iter(|| put_storm(&cluster));
            cluster.shutdown();
        });
    }
    g.throughput(Throughput::Elements(MIXED_OPS));
    for (name, f) in [
        ("mixed_storm", mixed_storm as fn(&Cluster)),
        ("get_heavy_storm", get_heavy_storm as fn(&Cluster)),
    ] {
        g.bench_function(name, |b| {
            let cluster = Cluster::start(2, Config::small()).unwrap();
            b.iter(|| f(&cluster));
            cluster.shutdown();
        });
    }
    g.throughput(Throughput::Elements(STORM_ADDS));
    let default_window = Config::small().combine_window;
    for (name, combine_window, batch_apply) in [
        ("atomic_add_storm/combining_on", default_window, true),
        ("atomic_add_storm/combining_off", 0, true),
        ("atomic_add_storm/batch_off", 0, false),
    ] {
        g.bench_function(name, |b| {
            let config = Config { combine_window, batch_apply, ..Config::small() };
            let cluster = Cluster::start(2, config).unwrap();
            b.iter(|| atomic_add_storm(&cluster));
            cluster.shutdown();
        });
    }
    // The same storms over real sockets: frames cross the kernel loopback
    // path instead of the sim's in-memory queues, pricing syscalls,
    // copies and wakeups per emitted buffer. Recorded by the gate script
    // but *not* gated — loopback latency on shared CI runners is too
    // noisy to hold to a 15% threshold (EXPERIMENTS.md tracks the
    // numbers instead).
    g.throughput(Throughput::Elements(ELEMS));
    g.bench_function("put_storm/tcp_loopback", |b| {
        let cluster = Cluster::start_tcp_loopback(2, Config::small()).unwrap();
        b.iter(|| put_storm(&cluster));
        cluster.shutdown();
    });
    g.throughput(Throughput::Elements(STORM_ADDS));
    g.bench_function("atomic_add_storm/tcp_loopback", |b| {
        let cluster = Cluster::start_tcp_loopback(2, Config::small()).unwrap();
        b.iter(|| atomic_add_storm(&cluster));
        cluster.shutdown();
    });
    // And over the shared-memory rings: the same real framing with zero
    // syscalls on the hot path — the number that prices exactly the
    // loopback syscall/copy/wakeup tax the rows above pay. Recorded,
    // not gated, like every non-sim tag.
    g.throughput(Throughput::Elements(ELEMS));
    g.bench_function("put_storm/shm", |b| {
        let cluster = Cluster::start_shm(2, Config::small()).unwrap();
        b.iter(|| put_storm(&cluster));
        cluster.shutdown();
    });
    g.throughput(Throughput::Elements(STORM_ADDS));
    g.bench_function("atomic_add_storm/shm", |b| {
        let cluster = Cluster::start_shm(2, Config::small()).unwrap();
        b.iter(|| atomic_add_storm(&cluster));
        cluster.shutdown();
    });
    g.finish();
}

criterion_group!(benches, bench_remote_ops);
criterion_main!(benches);
