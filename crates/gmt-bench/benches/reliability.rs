//! Reliability-layer overhead: the same remote-put storm through a
//! 2-node cluster with the seq/ack/retransmit layer on vs off.
//!
//! The delta is the end-to-end price of reliable delivery on a healthy
//! fabric: a 17-byte header per aggregation buffer, sequence/ack
//! bookkeeping in the communication server, and the retransmit-queue
//! bookkeeping holding pooled payloads until acked. EXPERIMENTS.md
//! records the measured numbers; the acceptance target is within 15% of
//! the unreliable path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gmt_core::{Cluster, Config, Distribution, SpawnPolicy};

const ELEMS: u64 = 2048;

fn put_storm(cluster: &Cluster) {
    cluster.node(0).run(|ctx| {
        let arr = ctx.alloc(ELEMS * 8, Distribution::Remote);
        ctx.parfor(SpawnPolicy::Local, ELEMS, 32, move |ctx, i| {
            ctx.put_value::<u64>(&arr, i, i).unwrap();
        });
        ctx.free(arr);
    });
}

fn bench_reliability_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("reliability_e2e");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ELEMS));
    for (name, reliable) in [("off", false), ("on", true)] {
        g.bench_function(name, |b| {
            let config = Config { reliable, ..Config::small() };
            let cluster = Cluster::start(2, config).unwrap();
            b.iter(|| put_storm(&cluster));
            cluster.shutdown();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reliability_overhead);
criterion_main!(benches);
