//! Aggregation-pipeline benchmarks and ablations (DESIGN.md §11).
//!
//! * command emit throughput through the two-level pipeline,
//! * pre-aggregation ablation (command blocks of one entry push straight
//!   to the shared queue, like skipping the thread-local level),
//! * aggregation-buffer size sweep (the paper picked 64 KiB, §IV-B),
//! * end-to-end DES ablation: GMT with vs without aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmt_core::aggregation::{AggShared, CommandSink};
use gmt_core::command::Command;
use gmt_sim::{simulate, MachineParams, OpPattern, Phase};
use std::sync::Arc;

/// Emits `n` small commands, draining the channel queue like the
/// communication server would.
///
/// The drain must interleave with the emits: aggregation gives up when
/// the fixed buffer pool is empty and retries on a later pump (in the
/// runtime, buffers flow back when the receiving helper drops them; a
/// single-threaded bench has to play that role itself or small-buffer
/// configurations make no forward progress between pumps).
fn pump_commands(shared: &Arc<AggShared>, sink: &mut CommandSink, n: u64) {
    let drain = |shared: &Arc<AggShared>| {
        // Dropping the popped payload releases the buffer to the pool.
        while shared.channel(0).pop_filled().is_some() {}
    };
    for i in 0..n {
        sink.emit(1, &Command::Ack { token: i });
        if i % 16 == 0 {
            drain(shared);
        }
    }
    // Final flush: one aggregation buffer per pump, draining in between
    // (the aggregation timeout is 0 in these benches, so every pump
    // flushes whatever is queued).
    sink.flush_block(1);
    while shared.queue(1).queued_bytes() > 0 {
        sink.pump();
        drain(shared);
    }
    drain(shared);
}

fn bench_emit_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation_emit");
    const N: u64 = 4096;
    g.throughput(Throughput::Elements(N));
    // Normal two-level pipeline (64-entry command blocks).
    g.bench_function("pre_aggregation_on", |b| {
        let shared = AggShared::new(2, 1, 4, 65536, 64, u64::MAX / 2, 0, 0, 0);
        let mut sink = CommandSink::new(Arc::clone(&shared), 0);
        b.iter(|| pump_commands(&shared, &mut sink, N));
    });
    // Ablation: one-entry blocks — every command goes through the shared
    // MPMC queue, i.e. no thread-local pre-aggregation level.
    g.bench_function("pre_aggregation_off", |b| {
        let shared = AggShared::new(2, 1, 4, 65536, 1, u64::MAX / 2, 0, 0, 0);
        let mut sink = CommandSink::new(Arc::clone(&shared), 0);
        b.iter(|| pump_commands(&shared, &mut sink, N));
    });
    // Reliability ablation: same pipeline with the seq/ack header reserved
    // at the front of every buffer, as `Config::reliable = true` runs it.
    g.bench_function("reliability_reserve_on", |b| {
        let shared =
            AggShared::new(2, 1, 4, 65536, 64, u64::MAX / 2, 0, gmt_core::reliable::HEADER_LEN, 0);
        let mut sink = CommandSink::new(Arc::clone(&shared), 0);
        b.iter(|| pump_commands(&shared, &mut sink, N));
    });
    g.finish();
}

fn bench_buffer_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation_buffer_size");
    const N: u64 = 4096;
    g.throughput(Throughput::Elements(N));
    for &size in &[4096usize, 16384, 65536, 262144] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let shared = AggShared::new(2, 1, 4, size, 64, u64::MAX / 2, 0, 0, 0);
            let mut sink = CommandSink::new(Arc::clone(&shared), 0);
            b.iter(|| pump_commands(&shared, &mut sink, N));
        });
    }
    g.finish();
}

fn bench_des_ablation(c: &mut Criterion) {
    // Modeled network time for the same workload with and without
    // aggregation: the DES runs here; the interesting output is the
    // simulated elapsed time (asserted in gmt-sim's tests), with the
    // criterion numbers documenting simulation cost itself.
    let mut g = c.benchmark_group("des_aggregation_ablation");
    g.sample_size(10);
    let phase = Phase::one_sender(512, 32, OpPattern::remote_put(8));
    g.bench_function("gmt_aggregated", |b| {
        b.iter(|| std::hint::black_box(simulate(MachineParams::gmt(), 2, phase, 1)))
    });
    g.bench_function("gmt_no_aggregation", |b| {
        b.iter(|| std::hint::black_box(simulate(MachineParams::gmt_no_aggregation(), 2, phase, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_emit_throughput, bench_buffer_size_sweep, bench_des_ablation);
criterion_main!(benches);
