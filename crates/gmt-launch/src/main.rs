//! # gmt-launch — multi-process GMT
//!
//! Boots a GMT cluster as **N OS processes** — the shape the paper's
//! runtime actually deploys as (one process per cluster node) — and runs
//! a named workload on it. The same binary is both the parent (spawns
//! children, waits) and the child (rendezvous → [`NodeRuntime`] → serve
//! or drive the workload), selected by the `GMT_NODE_ID` env var. The
//! wire is TCP by default; `GMT_TRANSPORT=shm` swaps in the shared-
//! memory ring transport (an `shm:` bootstrap naming the segment file),
//! and both the multi-process and `--single` legs honor the variable so
//! the bit-identity diff compares like with like.
//!
//! ```text
//! gmt-launch -n 4 --bin bfs            # 4 processes over loopback TCP
//! gmt-launch -n 4 --bin bfs --single   # same nodes, one process, sim fabric
//! GMT_TRANSPORT=shm gmt-launch -n 4 --bin bfs   # 4 processes, shm rings
//! ```
//!
//! Workload results go to **stdout** as `RESULT …` lines printed only by
//! node 0, and are schedule-independent by construction — so piping both
//! invocations above to files and `diff`ing them is the cross-process
//! bit-identical check CI runs. Everything else (progress, timing) goes
//! to stderr.
//!
//! End-of-job protocol (a two-phase barrier over the control channel):
//! node 0 drives the workload while peers serve remote accesses; when
//! node 0 finishes it signals DONE, each peer writes its artifacts and
//! acks DONE back, and only after every ack (or EOF — a dead peer has
//! acknowledged) does node 0 tear down. No peer mistakes job completion
//! for a death (the failure detector stays armed the whole run), and no
//! node tears its links down under a peer that is still writing. Both
//! waits are bounded and name the nodes that went missing.
//!
//! Chaos mode (`--kill <node>@<ms>`): the parent SIGKILLs the victim
//! that many milliseconds after node 0 reports the mesh up. Node 0 then
//! waits for every survivor-confirmed death *before* driving the
//! workload, so BFS still completes with exact results over the
//! survivors — and the launcher proves crash recovery end to end: the
//! kill is detected via connection-loss evidence, survivors converge on
//! an identical membership epoch (written to `GMT_EPOCH_OUT` for CI to
//! diff), and the per-node report distinguishes the injected kill from
//! a genuine crash.
//!
//! If `GMT_METRICS_OUT` names a directory, every node process drops a
//! metrics snapshot there (`<bin>-<transport>-node<i>.json`) before
//! exiting.

use gmt_core::{Cluster, Config, NodeRuntime, Transport};
use gmt_graph::{uniform_random, DistGraph, GraphSpec};
use gmt_kernels::bfs::gmt_bfs;
use gmt_kernels::chma::{fnv1a, gmt_chma_access, gmt_chma_populate, ChmaConfig, GmtHashMap};
use gmt_net::transport::TransportSelect;
use gmt_net::{rendezvous, Bootstrap, Control, ShmControl};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, ExitStatus};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything the CLI controls. One instance is parsed in the parent and
/// re-parsed identically in each child (children get the same argv —
/// which is how a child knows the kill schedule and picks the chaos
/// detector config).
#[derive(Debug, Clone)]
struct Opts {
    nodes: usize,
    bin: String,
    single: bool,
    vertices: u64,
    degree: u64,
    seed: u64,
    source: u64,
    bootstrap: Option<String>,
    /// Chaos kills: `(victim node, ms after the mesh is up)`.
    kill: Vec<(usize, u64)>,
    /// Parent supervision deadline in seconds.
    timeout_secs: u64,
}

const USAGE: &str = "\
gmt-launch — run a GMT workload across N node processes (TCP or shm)

USAGE:
    gmt-launch -n <nodes> --bin <bfs|chma> [options]

OPTIONS:
    -n, --nodes <N>       node processes to spawn [default: 2]
        --bin <NAME>      workload: bfs | chma (required)
        --single          run all nodes in ONE process instead (over the
                          sim fabric, or the backend GMT_TRANSPORT
                          names); prints identical RESULT lines
        --vertices <V>    bfs: graph vertices [default: 512]
        --degree <D>      bfs: average out-degree [default: 8]
        --seed <S>        bfs: graph seed [default: 42]
        --source <V>      bfs: source vertex [default: 0]
        --bootstrap <B>   rendezvous point: 'file:<path>', '<ip:port>',
                          or 'shm:<path>' (a shared-memory segment file;
                          implies the shm transport)
                          [default: file:<tmp>/gmt-launch-<pid>.addr, or
                          shm:<tmp>/gmt-launch-<pid>.seg under
                          GMT_TRANSPORT=shm]
        --kill <N>@<MS>   chaos: SIGKILL node N (never 0) MS milliseconds
                          after node 0 reports the mesh up; repeatable.
                          Survivors must confirm the death before the
                          workload runs, so RESULT lines stay exact
        --timeout <S>     parent supervision deadline; children still
                          running at the deadline are killed and the
                          launch fails, naming them [default: 120]

ENVIRONMENT:
    GMT_NODE_ID, GMT_NODES, GMT_BOOTSTRAP, GMT_READY   set by the parent
    GMT_TRANSPORT     wire for both the multi-process and --single legs:
                      tcp-loopback (default) or shm; --single also
                      accepts sim (its default)
    GMT_METRICS_OUT   directory for per-node metrics snapshots
                      (<bin>-<transport>-node<i>.json)
    GMT_EPOCH_OUT     directory for per-survivor membership epoch files
                      (chaos runs; CI diffs them identical)
";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        nodes: 2,
        bin: String::new(),
        single: false,
        vertices: 512,
        degree: 8,
        seed: 42,
        source: 0,
        bootstrap: None,
        kill: Vec::new(),
        timeout_secs: 120,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "-n" | "--nodes" => {
                opts.nodes = value(&mut i, "--nodes")?.parse().map_err(|e| format!("-n: {e}"))?
            }
            "--bin" => opts.bin = value(&mut i, "--bin")?,
            "--single" => opts.single = true,
            "--vertices" => {
                opts.vertices =
                    value(&mut i, "--vertices")?.parse().map_err(|e| format!("--vertices: {e}"))?
            }
            "--degree" => {
                opts.degree =
                    value(&mut i, "--degree")?.parse().map_err(|e| format!("--degree: {e}"))?
            }
            "--seed" => {
                opts.seed = value(&mut i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--source" => {
                opts.source =
                    value(&mut i, "--source")?.parse().map_err(|e| format!("--source: {e}"))?
            }
            "--bootstrap" => opts.bootstrap = Some(value(&mut i, "--bootstrap")?),
            "--kill" => {
                let v = value(&mut i, "--kill")?;
                let (n, ms) = v
                    .split_once('@')
                    .ok_or_else(|| format!("--kill wants <node>@<ms>, got '{v}'"))?;
                let n: usize = n.parse().map_err(|e| format!("--kill node: {e}"))?;
                let ms: u64 = ms.parse().map_err(|e| format!("--kill ms: {e}"))?;
                opts.kill.push((n, ms));
            }
            "--timeout" => {
                opts.timeout_secs =
                    value(&mut i, "--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if opts.nodes == 0 {
        return Err("-n must be at least 1".into());
    }
    if !opts.kill.is_empty() {
        if opts.single {
            return Err("--kill needs real processes; it cannot be combined with --single".into());
        }
        if opts.timeout_secs == 0 {
            return Err("--timeout must be at least 1 second when --kill is used".into());
        }
        let mut seen = Vec::new();
        for &(victim, _) in &opts.kill {
            if victim == 0 {
                return Err("--kill 0 is not allowed: node 0 drives the workload".into());
            }
            if victim >= opts.nodes {
                return Err(format!("--kill {victim} is out of range for -n {}", opts.nodes));
            }
            if seen.contains(&victim) {
                return Err(format!("--kill {victim} given twice"));
            }
            seen.push(victim);
        }
    }
    match opts.bin.as_str() {
        "bfs" | "chma" => Ok(opts),
        "" => Err("--bin is required (bfs | chma)".into()),
        other => Err(format!("unknown workload '{other}' (bfs | chma)")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gmt-launch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let role = std::env::var("GMT_NODE_ID").ok();
    let result = match role {
        Some(id) => child(&opts, &id),
        None if opts.single => single_process(&opts),
        None => parent(&opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gmt-launch: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Temp files the parent owns. Dropping removes them, so every exit path
/// — clean, spawn failure, supervision error, panic — cleans up the
/// bootstrap and ready files. (Node 0 also removes the bootstrap file
/// itself once registration completes; this is the backstop for runs
/// that die before or during rendezvous.)
struct TempFiles(Vec<PathBuf>);

impl Drop for TempFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// One spawned node process under parent supervision.
struct Supervised {
    node: usize,
    child: Child,
    status: Option<ExitStatus>,
    wait_error: Option<String>,
    /// The parent delivered the scheduled `--kill` SIGKILL to this child.
    injected: bool,
    /// The parent killed this child at the supervision deadline.
    timed_out: bool,
}

/// Parent: pick a rendezvous point, spawn one child per node with its
/// identity in the environment, and supervise them — reaping exits as
/// they happen, delivering scheduled `--kill`s once the mesh is up, and
/// killing whatever is still running at the `--timeout` deadline.
fn parent(opts: &Opts) -> Result<(), String> {
    let select = TransportSelect::from_env()?;
    let bootstrap = match &opts.bootstrap {
        Some(b) => b.clone(),
        None => {
            let mut p = std::env::temp_dir();
            if select == TransportSelect::Shm {
                p.push(format!("gmt-launch-{}.seg", std::process::id()));
                format!("shm:{}", p.display())
            } else {
                p.push(format!("gmt-launch-{}.addr", std::process::id()));
                format!("file:{}", p.display())
            }
        }
    };
    // Validate now so a typo fails in the parent, not in N children —
    // and catch a transport/bootstrap mismatch the same way: the
    // bootstrap form is what the children obey.
    let parsed = Bootstrap::parse(&bootstrap)?;
    let shm_bootstrap = matches!(parsed, Bootstrap::Shm(_));
    if select == TransportSelect::Shm && !shm_bootstrap {
        return Err(format!("GMT_TRANSPORT=shm needs an shm:<path> bootstrap, got '{bootstrap}'"));
    }
    if select == TransportSelect::TcpLoopback && shm_bootstrap {
        return Err(format!(
            "GMT_TRANSPORT={} contradicts the shm bootstrap '{bootstrap}'",
            std::env::var("GMT_TRANSPORT").unwrap_or_default()
        ));
    }

    let ready_path = std::env::temp_dir().join(format!("gmt-launch-{}.ready", std::process::id()));
    let _ = std::fs::remove_file(&ready_path);
    let mut cleanup = TempFiles(vec![ready_path.clone()]);
    // Backstop unlink for both bootstrap forms: node 0 removes the file
    // itself once the mesh is up; this covers runs that die earlier.
    if let Some(path) = bootstrap.strip_prefix("file:").or(bootstrap.strip_prefix("shm:")) {
        cleanup.0.push(path.into());
    }

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut children: Vec<Supervised> = Vec::with_capacity(opts.nodes);
    for node in 0..opts.nodes {
        let spawned = Command::new(&exe)
            .args(&args)
            .env("GMT_NODE_ID", node.to_string())
            .env("GMT_NODES", opts.nodes.to_string())
            .env("GMT_BOOTSTRAP", &bootstrap)
            .env("GMT_READY", &ready_path)
            .spawn();
        match spawned {
            Ok(child) => children.push(Supervised {
                node,
                child,
                status: None,
                wait_error: None,
                injected: false,
                timed_out: false,
            }),
            Err(e) => {
                for c in &mut children {
                    let _ = c.child.kill();
                    let _ = c.child.wait();
                }
                return Err(format!("spawning node {node}: {e}"));
            }
        }
    }
    supervise(opts, children, &ready_path)
}

/// The supervision loop. Kill timers arm only once node 0 has written
/// the ready file (the runtime is up on a formed mesh), so an injected
/// kill always lands mid-run — never mid-rendezvous, where it would
/// test bootstrap robustness instead of crash recovery.
fn supervise(
    opts: &Opts,
    mut children: Vec<Supervised>,
    ready_path: &std::path::Path,
) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(opts.timeout_secs);
    let mut kill_base = if opts.kill.is_empty() { Some(Instant::now()) } else { None };
    loop {
        let mut all_done = true;
        for c in children.iter_mut() {
            if c.status.is_none() && c.wait_error.is_none() {
                match c.child.try_wait() {
                    Ok(Some(status)) => c.status = Some(status),
                    Ok(None) => all_done = false,
                    Err(e) => c.wait_error = Some(e.to_string()),
                }
            }
        }
        if all_done {
            break;
        }
        if kill_base.is_none() && ready_path.exists() {
            eprintln!("[gmt-launch] mesh up; arming kill timers");
            kill_base = Some(Instant::now());
        }
        if let Some(base) = kill_base {
            for &(victim, ms) in &opts.kill {
                let c = children.iter_mut().find(|c| c.node == victim).expect("victim in range");
                if !c.injected && c.status.is_none() && base.elapsed() >= Duration::from_millis(ms)
                {
                    eprintln!(
                        "[gmt-launch] injecting SIGKILL into node {victim} (pid {}) at +{ms}ms",
                        c.child.id()
                    );
                    let _ = c.child.kill();
                    c.injected = true;
                }
            }
        }
        if Instant::now() >= deadline {
            let stuck: Vec<usize> =
                children.iter().filter(|c| c.status.is_none()).map(|c| c.node).collect();
            eprintln!(
                "[gmt-launch] supervision deadline ({}s) hit; killing nodes still running: \
                 {stuck:?}",
                opts.timeout_secs
            );
            for c in children.iter_mut().filter(|c| c.status.is_none()) {
                c.timed_out = true;
                let _ = c.child.kill();
                match c.child.wait() {
                    Ok(status) => c.status = Some(status),
                    Err(e) => c.wait_error = Some(e.to_string()),
                }
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut failed = Vec::new();
    eprintln!("[gmt-launch] node report:");
    for c in &children {
        let (desc, ok) = describe_exit(c);
        eprintln!("[gmt-launch]   node {}: {desc}", c.node);
        if !ok {
            failed.push(format!("node {} {desc}", c.node));
        }
    }
    // A scheduled kill that never fired means the victim exited first —
    // the run did not actually exercise a crash.
    for &(victim, ms) in &opts.kill {
        let c = children.iter().find(|c| c.node == victim).expect("victim in range");
        if !c.injected {
            failed.push(format!("node {victim}: scheduled kill at +{ms}ms never fired"));
        }
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(failed.join("; "))
    }
}

/// Classifies one child's exit for the report: clean exits and the
/// injected `--kill` SIGKILL are expected; everything else — a crash, a
/// wrong exit code, a hang the supervisor had to kill — fails the launch.
fn describe_exit(c: &Supervised) -> (String, bool) {
    if let Some(e) = &c.wait_error {
        return (format!("could not be waited on: {e}"), false);
    }
    let Some(status) = c.status else {
        return ("never reaped (supervisor bug)".to_string(), false);
    };
    if c.timed_out {
        return ("hung; killed by the supervisor at the deadline".to_string(), false);
    }
    let signal = {
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            status.signal()
        }
        #[cfg(not(unix))]
        {
            None::<i32>
        }
    };
    match (signal, c.injected) {
        (Some(9), true) => ("killed by SIGKILL (injected chaos, expected)".to_string(), true),
        (Some(s), true) => (format!("died of signal {s} before the injected SIGKILL"), false),
        (Some(s), false) => (format!("crashed: killed by signal {s}"), false),
        (None, true) => (format!("exited with {status} before the injected SIGKILL"), false),
        (None, false) if status.success() => ("exit ok".to_string(), true),
        (None, false) => (format!("failed: {status}"), false),
    }
}

/// The child side of whichever control channel the bootstrap form chose:
/// TCP rendezvous streams or the shm segment's done words. Same
/// done-barrier semantics either way.
enum AnyControl {
    Tcp(Control),
    Shm(ShmControl),
}

impl AnyControl {
    fn signal_done(&mut self) {
        match self {
            AnyControl::Tcp(c) => c.signal_done(),
            AnyControl::Shm(c) => c.signal_done(),
        }
    }

    fn wait_done_timeout(&mut self, timeout: Duration) -> Result<(), Vec<usize>> {
        match self {
            AnyControl::Tcp(c) => c.wait_done_timeout(timeout),
            AnyControl::Shm(c) => c.wait_done_timeout(timeout),
        }
    }
}

/// Child: join the mesh, boot this process's node, then either drive the
/// workload (node 0) or serve until node 0 signals done, ack, and leave.
fn child(opts: &Opts, id: &str) -> Result<(), String> {
    let node: usize = id.parse().map_err(|e| format!("GMT_NODE_ID: {e}"))?;
    let nodes: usize = std::env::var("GMT_NODES")
        .map_err(|_| "GMT_NODES not set".to_string())?
        .parse()
        .map_err(|e| format!("GMT_NODES: {e}"))?;
    let bootstrap =
        Bootstrap::parse(&std::env::var("GMT_BOOTSTRAP").map_err(|_| "GMT_BOOTSTRAP not set")?)?;

    let t0 = Instant::now();
    // The bootstrap form picks the wire: shm:<path> attaches the
    // shared-memory segment, anything else runs the TCP rendezvous.
    let (transport, mut control, wire): (Arc<dyn Transport>, AnyControl, &str) = match &bootstrap {
        Bootstrap::Shm(path) => {
            let (t, c) =
                gmt_net::shm::attach(node, nodes, path).map_err(|e| format!("shm attach: {e}"))?;
            (Arc::new(t), AnyControl::Shm(c), "shm")
        }
        other => {
            let (t, c) = rendezvous(node, nodes, other).map_err(|e| format!("rendezvous: {e}"))?;
            (Arc::new(t), AnyControl::Tcp(c), "tcp")
        }
    };
    eprintln!(
        "[gmt-launch] node {node}/{nodes} meshed over {wire} in {:.0?} (pid {})",
        t0.elapsed(),
        std::process::id()
    );
    let chaos = !opts.kill.is_empty();
    let config = if chaos {
        // Push the silence-based detector paths out so a sub-second
        // confirmation can only come from connection-loss evidence —
        // the property the kill matrix exists to prove.
        let mut c = Config::small();
        c.suspect_after_ns = 1_000_000_000;
        c.peer_death_timeout_ns = 10_000_000_000;
        c
    } else {
        Config::small()
    };
    let runtime = NodeRuntime::start(transport, config)?;
    eprintln!("[gmt-launch] node {node} runtime up");

    if node == 0 {
        // Tell the parent the mesh is formed so kill timers arm.
        if let Ok(p) = std::env::var("GMT_READY") {
            if !p.is_empty() {
                let _ = std::fs::write(&p, b"up\n");
            }
        }
        if chaos {
            // Victims die *before* the workload starts, so BFS runs — and
            // completes exactly — over the converged survivor set.
            await_victims_dead(runtime.node(), &opts.kill, node)?;
        }
        run_workload(opts, runtime.node(), wire);
        if chaos {
            let mut dead = runtime.node().dead_peers();
            dead.sort_unstable();
            println!("RESULT membership epoch={} dead={dead:?}", runtime.node().membership_epoch());
        }
        write_epoch(runtime.node(), node);
        write_metrics(&opts.bin, wire, runtime.node(), node);
        control.signal_done();
        // Wait for every survivor's ack so our links stay up while they
        // finish converging and writing artifacts. EOF counts as an ack
        // (a killed victim has nothing left to say).
        if let Err(missing) = control.wait_done_timeout(Duration::from_secs(30)) {
            eprintln!(
                "[gmt-launch] node 0: no done-barrier ack from nodes {missing:?}; \
                 shutting down anyway"
            );
        }
    } else {
        match control.wait_done_timeout(Duration::from_secs(opts.timeout_secs)) {
            Ok(()) => {}
            Err(missing) => {
                return Err(format!(
                    "done barrier timed out after {}s: no signal from node {missing:?} \
                     (did it crash before finishing the workload?)",
                    opts.timeout_secs
                ));
            }
        }
        if chaos {
            // Node 0 only signals done after full convergence, so the
            // victims' deaths have long been broadcast; this bounds the
            // wait for our own view to catch up.
            await_victims_dead(runtime.node(), &opts.kill, node)?;
        }
        write_epoch(runtime.node(), node);
        write_metrics(&opts.bin, wire, runtime.node(), node);
        control.signal_done();
    }
    runtime.shutdown();
    Ok(())
}

/// Blocks until this node's membership view shows exactly the scheduled
/// victims dead (one epoch bump per victim). Sub-second convergence here
/// is the connection-loss evidence path at work: the chaos config keeps
/// suspicion at 1 s and the retry budget longer still.
fn await_victims_dead(
    handle: &gmt_core::NodeHandle,
    kills: &[(usize, u64)],
    me: usize,
) -> Result<(), String> {
    let mut expected: Vec<usize> = kills.iter().map(|&(n, _)| n).collect();
    expected.sort_unstable();
    let t0 = Instant::now();
    let budget = Duration::from_secs(60);
    loop {
        let dead = handle.dead_peers();
        if dead == expected && handle.membership_epoch() == expected.len() as u64 {
            eprintln!(
                "[gmt-launch] node {me}: victims {expected:?} confirmed dead in {:.0?}",
                t0.elapsed()
            );
            return Ok(());
        }
        if t0.elapsed() > budget {
            return Err(format!(
                "node {me}: victims {expected:?} not confirmed dead within {budget:?} \
                 (dead: {dead:?}, epoch {})",
                handle.membership_epoch()
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Honors `GMT_EPOCH_OUT`: one `epoch-node<i>.txt` per surviving node
/// recording its converged membership view. CI diffs all survivors'
/// files byte-identical — the cross-process form of the "agreement"
/// assertions the in-process membership suite makes.
fn write_epoch(node: &gmt_core::NodeHandle, id: usize) {
    let Ok(dir) = std::env::var("GMT_EPOCH_OUT") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let mut dead = node.dead_peers();
    dead.sort_unstable();
    let path = format!("{dir}/epoch-node{id}.txt");
    let content = format!("epoch={} dead={dead:?}\n", node.membership_epoch());
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("[gmt-launch] could not write {path}: {e}");
    }
}

/// `--single`: the same nodes and workload in one process — the
/// reference run the multi-process output is diffed against. Defaults
/// to the sim fabric; an explicit `GMT_TRANSPORT` pins the in-process
/// leg to the same wire as the multi-process one.
fn single_process(opts: &Opts) -> Result<(), String> {
    let (cluster, label) = match TransportSelect::from_env()? {
        TransportSelect::Sim => (Cluster::start_sim(opts.nodes, Config::small())?, "sim"),
        TransportSelect::TcpLoopback => {
            (Cluster::start_tcp_loopback(opts.nodes, Config::small())?, "tcp")
        }
        TransportSelect::Shm => (Cluster::start_shm(opts.nodes, Config::small())?, "shm"),
    };
    run_workload(opts, cluster.node(0), label);
    for node in 0..opts.nodes {
        write_metrics(&opts.bin, label, cluster.node(node), node);
    }
    cluster.shutdown();
    Ok(())
}

fn run_workload(opts: &Opts, driver: &gmt_core::NodeHandle, backend: &str) {
    let t0 = Instant::now();
    match opts.bin.as_str() {
        "bfs" => run_bfs(opts, driver),
        "chma" => run_chma(driver),
        other => unreachable!("workload '{other}' rejected at parse time"),
    }
    eprintln!("[gmt-launch] {} over {backend} took {:.0?}", opts.bin, t0.elapsed());
}

/// BFS over a uniform random graph. Per-vertex levels are
/// schedule-independent (level-synchronous traversal; each vertex is
/// claimed by CAS at exactly one level), so the FNV-1a digest of the
/// level array is comparable across backends and process layouts.
fn run_bfs(opts: &Opts, driver: &gmt_core::NodeHandle) {
    let spec = GraphSpec { vertices: opts.vertices, avg_degree: opts.degree, seed: opts.seed };
    let source = opts.source;
    let r = driver.run(move |ctx| {
        let csr = uniform_random(spec);
        let g = DistGraph::from_csr(ctx, &csr);
        let r = gmt_bfs(ctx, &g, source);
        g.free(ctx);
        r
    });
    let mut bytes = Vec::with_capacity(r.levels.len() * 8);
    for l in &r.levels {
        bytes.extend_from_slice(&l.to_le_bytes());
    }
    println!(
        "RESULT bfs vertices={} degree={} seed={} source={} visited={} traversed_edges={} \
         levels_fnv=0x{:016x}",
        opts.vertices,
        opts.degree,
        opts.seed,
        source,
        r.visited,
        r.traversed_edges,
        fnv1a(&bytes)
    );
}

/// CHMA on a collision-free configuration: every pool string and its
/// reversal hashes to a private slot, so hit/miss/insert totals are a
/// pure function of the config — no CAS race can tilt them (the same
/// construction combining.rs uses for its determinism tests).
fn run_chma(driver: &gmt_core::NodeHandle) {
    let cfg = ChmaConfig { entries: 65536, pool: 128, tasks: 8, steps: 16, seed: 1 };
    let (inserted, r) = driver.run(move |ctx| {
        let map = GmtHashMap::alloc(ctx, cfg.entries);
        let inserted = gmt_chma_populate(ctx, &map, &cfg);
        let r = gmt_chma_access(ctx, &map, &cfg);
        map.free(ctx);
        (inserted, r)
    });
    println!(
        "RESULT chma entries={} pool={} tasks={} steps={} seed={} populated={} hits={} misses={} \
         inserts={} accesses={}",
        cfg.entries,
        cfg.pool,
        cfg.tasks,
        cfg.steps,
        cfg.seed,
        inserted,
        r.hits,
        r.misses,
        r.inserts,
        r.accesses
    );
}

/// Honors `GMT_METRICS_OUT`: one JSON snapshot per node, same layout the
/// fault-injection CI jobs upload as failure artifacts. The transport
/// label is part of the file name so a diff artifact says which wire
/// produced it (RESULT lines on stdout stay transport-free by design).
fn write_metrics(bin: &str, transport: &str, node: &gmt_core::NodeHandle, id: usize) {
    let Ok(dir) = std::env::var("GMT_METRICS_OUT") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/{bin}-{transport}-node{id}.json");
    if let Err(e) = std::fs::write(&path, node.metrics_snapshot().to_json()) {
        eprintln!("[gmt-launch] could not write {path}: {e}");
    }
}
