//! # gmt-launch — multi-process GMT
//!
//! Boots a GMT cluster as **N OS processes** talking TCP — the shape the
//! paper's runtime actually deploys as (one process per cluster node) —
//! and runs a named workload on it. The same binary is both the parent
//! (spawns children, waits) and the child (rendezvous → [`NodeRuntime`] →
//! serve or drive the workload), selected by the `GMT_NODE_ID` env var.
//!
//! ```text
//! gmt-launch -n 4 --bin bfs            # 4 processes over loopback TCP
//! gmt-launch -n 4 --bin bfs --single   # same nodes, one process, sim fabric
//! ```
//!
//! Workload results go to **stdout** as `RESULT …` lines printed only by
//! node 0, and are schedule-independent by construction — so piping both
//! invocations above to files and `diff`ing them is the cross-process
//! bit-identical check CI runs. Everything else (progress, timing) goes
//! to stderr.
//!
//! End-of-job protocol: node 0 drives the workload while peers serve
//! remote accesses; when node 0 finishes it signals DONE over the
//! rendezvous control channel, and only then does anyone shut down — no
//! peer mistakes job completion for a death (the failure detector stays
//! armed the whole run).
//!
//! If `GMT_METRICS_OUT` names a directory, every node process drops a
//! metrics snapshot there (`<bin>-node<i>.json`) before exiting.

use gmt_core::{Cluster, Config, NodeRuntime, Transport};
use gmt_graph::{uniform_random, DistGraph, GraphSpec};
use gmt_kernels::bfs::gmt_bfs;
use gmt_kernels::chma::{fnv1a, gmt_chma_access, gmt_chma_populate, ChmaConfig, GmtHashMap};
use gmt_net::{rendezvous, Bootstrap};
use std::process::{Command, ExitCode};
use std::sync::Arc;
use std::time::Instant;

/// Everything the CLI controls. One instance is parsed in the parent and
/// re-parsed identically in each child (children get the same argv).
#[derive(Debug, Clone)]
struct Opts {
    nodes: usize,
    bin: String,
    single: bool,
    vertices: u64,
    degree: u64,
    seed: u64,
    source: u64,
    bootstrap: Option<String>,
}

const USAGE: &str = "\
gmt-launch — run a GMT workload across N node processes over TCP

USAGE:
    gmt-launch -n <nodes> --bin <bfs|chma> [options]

OPTIONS:
    -n, --nodes <N>       node processes to spawn [default: 2]
        --bin <NAME>      workload: bfs | chma (required)
        --single          run all nodes in ONE process over the sim
                          fabric instead; prints identical RESULT lines
        --vertices <V>    bfs: graph vertices [default: 512]
        --degree <D>      bfs: average out-degree [default: 8]
        --seed <S>        bfs: graph seed [default: 42]
        --source <V>      bfs: source vertex [default: 0]
        --bootstrap <B>   rendezvous point: 'file:<path>' or '<ip:port>'
                          [default: file:<tmp>/gmt-launch-<pid>.addr]

ENVIRONMENT:
    GMT_NODE_ID, GMT_NODES, GMT_BOOTSTRAP   set by the parent on children
    GMT_METRICS_OUT   directory for per-node metrics snapshots
";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        nodes: 2,
        bin: String::new(),
        single: false,
        vertices: 512,
        degree: 8,
        seed: 42,
        source: 0,
        bootstrap: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "-n" | "--nodes" => {
                opts.nodes = value(&mut i, "--nodes")?.parse().map_err(|e| format!("-n: {e}"))?
            }
            "--bin" => opts.bin = value(&mut i, "--bin")?,
            "--single" => opts.single = true,
            "--vertices" => {
                opts.vertices =
                    value(&mut i, "--vertices")?.parse().map_err(|e| format!("--vertices: {e}"))?
            }
            "--degree" => {
                opts.degree =
                    value(&mut i, "--degree")?.parse().map_err(|e| format!("--degree: {e}"))?
            }
            "--seed" => {
                opts.seed = value(&mut i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--source" => {
                opts.source =
                    value(&mut i, "--source")?.parse().map_err(|e| format!("--source: {e}"))?
            }
            "--bootstrap" => opts.bootstrap = Some(value(&mut i, "--bootstrap")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if opts.nodes == 0 {
        return Err("-n must be at least 1".into());
    }
    match opts.bin.as_str() {
        "bfs" | "chma" => Ok(opts),
        "" => Err("--bin is required (bfs | chma)".into()),
        other => Err(format!("unknown workload '{other}' (bfs | chma)")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gmt-launch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let role = std::env::var("GMT_NODE_ID").ok();
    let result = match role {
        Some(id) => child(&opts, &id),
        None if opts.single => single_process(&opts),
        None => parent(&opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gmt-launch: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parent: pick a rendezvous point, spawn one child per node with its
/// identity in the environment, and wait for all of them.
fn parent(opts: &Opts) -> Result<(), String> {
    let bootstrap = match &opts.bootstrap {
        Some(b) => b.clone(),
        None => {
            let mut p = std::env::temp_dir();
            p.push(format!("gmt-launch-{}.addr", std::process::id()));
            format!("file:{}", p.display())
        }
    };
    // Validate now so a typo fails in the parent, not in N children.
    Bootstrap::parse(&bootstrap)?;

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut children = Vec::with_capacity(opts.nodes);
    for node in 0..opts.nodes {
        let child = Command::new(&exe)
            .args(&args)
            .env("GMT_NODE_ID", node.to_string())
            .env("GMT_NODES", opts.nodes.to_string())
            .env("GMT_BOOTSTRAP", &bootstrap)
            .spawn()
            .map_err(|e| format!("spawning node {node}: {e}"))?;
        children.push((node, child));
    }
    let mut failed = Vec::new();
    for (node, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failed.push(format!("node {node} exited with {status}")),
            Err(e) => failed.push(format!("waiting for node {node}: {e}")),
        }
    }
    if let Some(path) = bootstrap.strip_prefix("file:") {
        let _ = std::fs::remove_file(path);
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(failed.join("; "))
    }
}

/// Child: join the mesh, boot this process's node, then either drive the
/// workload (node 0) or serve until node 0 signals done.
fn child(opts: &Opts, id: &str) -> Result<(), String> {
    let node: usize = id.parse().map_err(|e| format!("GMT_NODE_ID: {e}"))?;
    let nodes: usize = std::env::var("GMT_NODES")
        .map_err(|_| "GMT_NODES not set".to_string())?
        .parse()
        .map_err(|e| format!("GMT_NODES: {e}"))?;
    let bootstrap =
        Bootstrap::parse(&std::env::var("GMT_BOOTSTRAP").map_err(|_| "GMT_BOOTSTRAP not set")?)?;

    let t0 = Instant::now();
    let (transport, mut control) =
        rendezvous(node, nodes, &bootstrap).map_err(|e| format!("rendezvous: {e}"))?;
    eprintln!(
        "[gmt-launch] node {node}/{nodes} meshed in {:.0?} (pid {})",
        t0.elapsed(),
        std::process::id()
    );
    let runtime = NodeRuntime::start(Arc::new(transport) as Arc<dyn Transport>, Config::small())?;
    eprintln!("[gmt-launch] node {node} runtime up");

    if node == 0 {
        run_workload(opts, runtime.node(), "tcp");
        control.signal_done();
    } else {
        control.wait_done();
    }
    write_metrics(&opts.bin, runtime.node(), node);
    runtime.shutdown();
    Ok(())
}

/// `--single`: the same nodes and workload in one process over the sim
/// fabric — the reference run the TCP output is diffed against.
fn single_process(opts: &Opts) -> Result<(), String> {
    let cluster = Cluster::start_sim(opts.nodes, Config::small())?;
    run_workload(opts, cluster.node(0), "sim");
    for node in 0..opts.nodes {
        write_metrics(&opts.bin, cluster.node(node), node);
    }
    cluster.shutdown();
    Ok(())
}

fn run_workload(opts: &Opts, driver: &gmt_core::NodeHandle, backend: &str) {
    let t0 = Instant::now();
    match opts.bin.as_str() {
        "bfs" => run_bfs(opts, driver),
        "chma" => run_chma(driver),
        other => unreachable!("workload '{other}' rejected at parse time"),
    }
    eprintln!("[gmt-launch] {} over {backend} took {:.0?}", opts.bin, t0.elapsed());
}

/// BFS over a uniform random graph. Per-vertex levels are
/// schedule-independent (level-synchronous traversal; each vertex is
/// claimed by CAS at exactly one level), so the FNV-1a digest of the
/// level array is comparable across backends and process layouts.
fn run_bfs(opts: &Opts, driver: &gmt_core::NodeHandle) {
    let spec = GraphSpec { vertices: opts.vertices, avg_degree: opts.degree, seed: opts.seed };
    let source = opts.source;
    let r = driver.run(move |ctx| {
        let csr = uniform_random(spec);
        let g = DistGraph::from_csr(ctx, &csr);
        let r = gmt_bfs(ctx, &g, source);
        g.free(ctx);
        r
    });
    let mut bytes = Vec::with_capacity(r.levels.len() * 8);
    for l in &r.levels {
        bytes.extend_from_slice(&l.to_le_bytes());
    }
    println!(
        "RESULT bfs vertices={} degree={} seed={} source={} visited={} traversed_edges={} \
         levels_fnv=0x{:016x}",
        opts.vertices,
        opts.degree,
        opts.seed,
        source,
        r.visited,
        r.traversed_edges,
        fnv1a(&bytes)
    );
}

/// CHMA on a collision-free configuration: every pool string and its
/// reversal hashes to a private slot, so hit/miss/insert totals are a
/// pure function of the config — no CAS race can tilt them (the same
/// construction combining.rs uses for its determinism tests).
fn run_chma(driver: &gmt_core::NodeHandle) {
    let cfg = ChmaConfig { entries: 65536, pool: 128, tasks: 8, steps: 16, seed: 1 };
    let (inserted, r) = driver.run(move |ctx| {
        let map = GmtHashMap::alloc(ctx, cfg.entries);
        let inserted = gmt_chma_populate(ctx, &map, &cfg);
        let r = gmt_chma_access(ctx, &map, &cfg);
        map.free(ctx);
        (inserted, r)
    });
    println!(
        "RESULT chma entries={} pool={} tasks={} steps={} seed={} populated={} hits={} misses={} \
         inserts={} accesses={}",
        cfg.entries,
        cfg.pool,
        cfg.tasks,
        cfg.steps,
        cfg.seed,
        inserted,
        r.hits,
        r.misses,
        r.inserts,
        r.accesses
    );
}

/// Honors `GMT_METRICS_OUT`: one JSON snapshot per node, same layout the
/// fault-injection CI jobs upload as failure artifacts.
fn write_metrics(bin: &str, node: &gmt_core::NodeHandle, id: usize) {
    let Ok(dir) = std::env::var("GMT_METRICS_OUT") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/{bin}-node{id}.json");
    if let Err(e) = std::fs::write(&path, node.metrics_snapshot().to_json()) {
        eprintln!("[gmt-launch] could not write {path}: {e}");
    }
}
