//! Ring-buffer event tracing with Chrome `trace_event` export.
//!
//! One [`Lane`] per runtime thread (worker / helper / communication
//! server), each a fixed-capacity single-producer ring: the owning thread
//! writes events with no synchronization beyond one release store of the
//! ring head, so tracing never introduces cross-thread contention. When
//! the ring fills, the oldest events are overwritten — a trace is a
//! sliding window over the run's tail, which is what post-mortem
//! debugging wants.
//!
//! Export ([`TraceSink::chrome_trace_json`]) produces the Chrome
//! `trace_event` JSON array format: one `pid` per node, one `tid` per
//! thread, `ph:"X"` complete events for spans and `ph:"i"` instants, with
//! `process_name`/`thread_name` metadata so `chrome://tracing` and
//! Perfetto label every lane. Export requires `&mut self` — i.e. every
//! writer handle dropped (runtime threads joined) — which is what makes
//! the unsynchronized ring reads sound.

use crate::json::JsonWriter;
use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Phase byte of a complete event (span with duration).
pub const PH_COMPLETE: u8 = b'X';
/// Phase byte of an instant event.
pub const PH_INSTANT: u8 = b'i';

/// One recorded event. `arg` is a free payload (bytes, slot index, …)
/// exported as `args.v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub name: &'static str,
    pub ph: u8,
    pub arg: u64,
}

const EMPTY: TraceEvent = TraceEvent { ts_ns: 0, dur_ns: 0, name: "", ph: 0, arg: 0 };

struct Lane {
    name: String,
    /// Chrome process id — the node the thread belongs to.
    pid: u64,
    /// Chrome thread id — the thread's index within the node.
    tid: u64,
    /// Total events ever written; slot `i % capacity` holds event `i`.
    head: CachePadded<AtomicUsize>,
    claimed: AtomicBool,
    slots: Box<[UnsafeCell<TraceEvent>]>,
}

// SAFETY: slot access is single-writer (enforced by `claimed`: at most one
// `LaneWriter` exists per lane) and reads happen only through
// `TraceSink::chrome_trace_json(&mut self)`, which requires every writer
// handle to have been dropped.
unsafe impl Sync for Lane {}
unsafe impl Send for Lane {}

/// The per-process (or per-cluster) trace collector.
pub struct TraceSink {
    start: Instant,
    capacity: usize,
    lanes: Vec<Lane>,
}

impl TraceSink {
    /// `capacity` = events retained per lane (rounded up to at least 16).
    pub fn new(capacity: usize) -> Self {
        TraceSink { start: Instant::now(), capacity: capacity.max(16), lanes: Vec::new() }
    }

    /// Adds a lane before the sink is shared. Returns its index.
    pub fn add_lane(&mut self, name: impl Into<String>, pid: u64, tid: u64) -> usize {
        self.lanes.push(Lane {
            name: name.into(),
            pid,
            tid,
            head: CachePadded::new(AtomicUsize::new(0)),
            claimed: AtomicBool::new(false),
            slots: (0..self.capacity).map(|_| UnsafeCell::new(EMPTY)).collect(),
        });
        self.lanes.len() - 1
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Nanoseconds since the sink was created (the trace timebase).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Claims the single writer handle for `lane`; `None` if already
    /// claimed.
    pub fn writer(self: &Arc<Self>, lane: usize) -> Option<LaneWriter> {
        if self.lanes[lane].claimed.swap(true, Ordering::AcqRel) {
            return None;
        }
        Some(LaneWriter { sink: Arc::clone(self), lane })
    }

    /// Events overwritten (lost to ring wrap-around) across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.head.load(Ordering::Acquire).saturating_sub(self.capacity) as u64)
            .sum()
    }

    /// Retained events of one lane, oldest first, sorted by timestamp.
    /// Requires `&mut self`: every [`LaneWriter`] must be gone.
    pub fn lane_events(&mut self, lane: usize) -> Vec<TraceEvent> {
        let cap = self.capacity;
        let l = &self.lanes[lane];
        let head = l.head.load(Ordering::Acquire);
        let (first, len) = if head <= cap { (0, head) } else { (head % cap, cap) };
        let mut events: Vec<TraceEvent> = (0..len)
            // SAFETY: `&mut self` means no writer handle exists, so the
            // slots are quiescent.
            .map(|i| unsafe { *l.slots[(first + i) % cap].get() })
            .collect();
        // Span events are recorded at their *end* but stamped with their
        // start time, so raw ring order is not time order.
        events.sort_by_key(|e| e.ts_ns);
        events
    }

    /// Exports every lane as a Chrome `trace_event` JSON document
    /// (object format: `{"traceEvents":[...],"displayTimeUnit":"ns"}`).
    /// `ts`/`dur` are microseconds with nanosecond decimals, per the
    /// format spec.
    pub fn chrome_trace_json(&mut self) -> String {
        let lanes = self.lanes.len();
        let mut w = JsonWriter::new();
        let mut per_lane: Vec<Vec<TraceEvent>> = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            per_lane.push(self.lane_events(lane));
        }
        w.obj(|w| {
            w.key("traceEvents");
            w.arr(|w| {
                // Metadata: name processes (nodes) and threads (lanes).
                let mut named_pids: Vec<u64> = Vec::new();
                for l in &self.lanes {
                    if !named_pids.contains(&l.pid) {
                        named_pids.push(l.pid);
                        w.obj(|w| {
                            w.key("name");
                            w.str("process_name");
                            w.key("ph");
                            w.str("M");
                            w.key("pid");
                            w.num_u64(l.pid);
                            w.key("args");
                            w.obj(|w| {
                                w.key("name");
                                w.str(&format!("node{}", l.pid));
                            });
                        });
                    }
                    w.obj(|w| {
                        w.key("name");
                        w.str("thread_name");
                        w.key("ph");
                        w.str("M");
                        w.key("pid");
                        w.num_u64(l.pid);
                        w.key("tid");
                        w.num_u64(l.tid);
                        w.key("args");
                        w.obj(|w| {
                            w.key("name");
                            w.str(&l.name);
                        });
                    });
                }
                for (lane, events) in per_lane.iter().enumerate() {
                    let l = &self.lanes[lane];
                    for e in events {
                        w.obj(|w| {
                            w.key("name");
                            w.str(e.name);
                            w.key("cat");
                            w.str("gmt");
                            w.key("ph");
                            w.str(match e.ph {
                                PH_COMPLETE => "X",
                                _ => "i",
                            });
                            w.key("ts");
                            w.num_ns_as_us(e.ts_ns);
                            if e.ph == PH_COMPLETE {
                                w.key("dur");
                                w.num_ns_as_us(e.dur_ns);
                            } else {
                                // Instant scope: thread.
                                w.key("s");
                                w.str("t");
                            }
                            w.key("pid");
                            w.num_u64(l.pid);
                            w.key("tid");
                            w.num_u64(l.tid);
                            w.key("args");
                            w.obj(|w| {
                                w.key("v");
                                w.num_u64(e.arg);
                            });
                        });
                    }
                }
            });
            w.key("displayTimeUnit");
            w.str("ns");
        });
        w.finish()
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("lanes", &self.lanes.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// The single producer handle of one lane. Not `Clone`; owning it is the
/// permission to write the lane's ring.
pub struct LaneWriter {
    sink: Arc<TraceSink>,
    lane: usize,
}

impl LaneWriter {
    /// Nanoseconds since the sink epoch — pair with [`Self::span`].
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.sink.now_ns()
    }

    #[inline]
    fn record(&self, ev: TraceEvent) {
        let l = &self.sink.lanes[self.lane];
        let head = l.head.load(Ordering::Relaxed);
        // SAFETY: this is the lane's only writer (claimed in
        // `TraceSink::writer`), and readers require `&mut TraceSink`.
        unsafe { *l.slots[head % self.sink.capacity].get() = ev };
        l.head.store(head + 1, Ordering::Release);
    }

    /// Records a complete span that started at `start_ns` (from
    /// [`Self::now_ns`]) and ends now.
    #[inline]
    pub fn span(&self, name: &'static str, start_ns: u64, arg: u64) {
        let now = self.sink.now_ns();
        self.record(TraceEvent {
            ts_ns: start_ns,
            dur_ns: now.saturating_sub(start_ns),
            name,
            ph: PH_COMPLETE,
            arg,
        });
    }

    /// Records an instant event happening now.
    #[inline]
    pub fn instant(&self, name: &'static str, arg: u64) {
        self.record(TraceEvent { ts_ns: self.sink.now_ns(), dur_ns: 0, name, ph: PH_INSTANT, arg });
    }
}

impl std::fmt::Debug for LaneWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneWriter").field("lane", &self.lane).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sink_with_lanes(cap: usize, lanes: &[(&str, u64, u64)]) -> TraceSink {
        let mut s = TraceSink::new(cap);
        for &(name, pid, tid) in lanes {
            s.add_lane(name, pid, tid);
        }
        s
    }

    #[test]
    fn lane_writer_is_exclusive() {
        let sink = Arc::new(sink_with_lanes(64, &[("w0", 0, 0)]));
        let w = sink.writer(0).expect("first claim");
        assert!(sink.writer(0).is_none(), "second claim must fail");
        drop(w);
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut s = sink_with_lanes(16, &[("w0", 0, 0)]);
        let sink = Arc::new(s);
        let w = sink.writer(0).unwrap();
        for i in 0..50u64 {
            w.record(TraceEvent { ts_ns: i, dur_ns: 0, name: "e", ph: PH_INSTANT, arg: i });
        }
        drop(w);
        assert_eq!(sink.dropped(), 50 - 16);
        s = Arc::into_inner(sink).expect("writers all dropped");
        let events = s.lane_events(0);
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().arg, 34);
        assert_eq!(events.last().unwrap().arg, 49);
    }

    #[test]
    fn concurrent_lanes_do_not_interfere() {
        let sink = Arc::new(sink_with_lanes(1024, &[("w0", 0, 0), ("w1", 0, 1), ("c", 1, 0)]));
        let threads: Vec<_> = (0..3)
            .map(|lane| {
                let w = sink.writer(lane).unwrap();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let t0 = w.now_ns();
                        w.span("work", t0, i);
                        w.instant("tick", i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut s = Arc::into_inner(sink).expect("writers dropped");
        for lane in 0..3 {
            assert_eq!(s.lane_events(lane).len(), 1000);
        }
        assert_eq!(s.dropped(), 0);
    }

    /// The exported document must parse, carry the metadata Perfetto
    /// needs, and keep `ts` monotone within every (pid, tid) lane.
    #[test]
    fn chrome_export_is_schema_valid_and_monotone_per_lane() {
        let sink = Arc::new(sink_with_lanes(256, &[("worker0", 0, 0), ("comm", 1, 9)]));
        for lane in 0..2 {
            let w = sink.writer(lane).unwrap();
            for i in 0..40 {
                let t0 = w.now_ns();
                if i % 3 == 0 {
                    w.instant("park", i);
                }
                w.span("task", t0, i);
            }
        }
        let mut s = Arc::into_inner(sink).expect("writers dropped");
        let text = s.chrome_trace_json();
        let v = json::parse(&text).expect("well-formed JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
        assert!(!events.is_empty());

        let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
        let mut thread_names = 0;
        let mut spans = 0;
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph present");
            let pid = e.get("pid").and_then(|p| p.as_u64()).expect("pid present");
            assert!(e.get("name").and_then(|n| n.as_str()).is_some(), "name present");
            match ph {
                "M" => {
                    if e.get("name").unwrap().as_str() == Some("thread_name") {
                        thread_names += 1;
                    }
                }
                "X" | "i" => {
                    let tid = e.get("tid").and_then(|t| t.as_u64()).expect("tid present");
                    let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts present");
                    if ph == "X" {
                        assert!(e.get("dur").and_then(|d| d.as_f64()).is_some(), "dur on spans");
                        spans += 1;
                    }
                    let prev = last_ts.insert((pid, tid), ts);
                    if let Some(prev) = prev {
                        assert!(ts >= prev, "ts regressed within lane ({pid},{tid})");
                    }
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert_eq!(thread_names, 2, "one thread_name metadata event per lane");
        assert_eq!(spans, 80);
    }
}
