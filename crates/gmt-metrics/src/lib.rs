//! # gmt-metrics — runtime observability for the GMT reproduction
//!
//! The paper's argument rests on runtime internals — context-switch cost
//! (Table III), aggregation-buffer occupancy (Figure 9), command latency
//! hidden by multithreading — that are invisible without instrumentation.
//! This crate provides the three pieces the runtime needs to expose them:
//!
//! * [`Registry`] — a lock-free, sharded metrics registry. Registration
//!   takes a lock once at startup; every hot-path update is a relaxed
//!   atomic on a cache-padded per-thread shard, so instrumented code pays
//!   no shared-cacheline RMW (the same discipline the aggregation layer's
//!   statistics already follow).
//! * [`MetricsSnapshot`] — a point-in-time, serializable view of every
//!   instrument ([`MetricsSnapshot::to_json`]; the build container has no
//!   serde, so [`json`] is a minimal hand-rolled writer/parser).
//! * [`trace::TraceSink`] — an optional event tracer: one fixed-capacity
//!   SPSC ring per runtime thread (zero cross-thread contention), exported
//!   as Chrome `trace_event` JSON so a whole multi-node run opens in
//!   `chrome://tracing` / Perfetto with one lane per thread.
//!
//! Timing discipline: metric *histograms* are expected to be fed from the
//! runtime's coarse clock (no `Instant::now` on hot paths); the tracer
//! reads wall time per event, which is acceptable because tracing is
//! opt-in and compiled out of the runtime unless its `trace` feature is
//! enabled.

pub mod json;
pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
