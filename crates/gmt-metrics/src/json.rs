//! Minimal JSON writer and parser.
//!
//! The build environment vendors every dependency, and none of the
//! vendored crates is a JSON library — so the snapshot/trace exporters
//! write JSON by hand through [`JsonWriter`], and the schema tests (and
//! the bench-gate comparison, when it wants more than `awk`) read it back
//! through [`parse`]. The parser is a strict recursive-descent reader of
//! the JSON subset the exporters produce plus standard escapes; it is not
//! a general-purpose validator of every RFC 8259 corner, but it rejects
//! anything structurally malformed, which is what the trace schema test
//! needs.

use std::collections::BTreeMap;

/// Incremental JSON writer with automatic comma placement and string
/// escaping.
pub struct JsonWriter {
    out: String,
    /// Whether the next value at the current nesting level needs a comma.
    need_comma: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter { out: String::new(), need_comma: vec![false] }
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    /// Writes an object: the closure emits `key`/value pairs.
    pub fn obj(&mut self, f: impl FnOnce(&mut Self)) {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
        f(self);
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Writes an array: the closure emits values.
    pub fn arr(&mut self, f: impl FnOnce(&mut Self)) {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
        f(self);
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key (must be followed by exactly one value).
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not emit another comma.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
    }

    pub fn str(&mut self, s: &str) {
        self.pre_value();
        write_escaped(&mut self.out, s);
    }

    pub fn num_u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    pub fn num_i64(&mut self, v: i64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a nanosecond quantity as fractional microseconds (the unit
    /// Chrome trace events use for `ts`/`dur`).
    pub fn num_ns_as_us(&mut self, ns: u64) {
        self.pre_value();
        self.out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
    }

    pub fn finish(self) -> String {
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact u64 (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => {
                Err(format!("unexpected {:?} at offset {}", other.map(|c| c as char), self.pos))
            }
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar (input is a &str, so byte
                    // boundaries are safe to recover).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.key("name");
            w.str("a \"quoted\"\nline\\");
            w.key("list");
            w.arr(|w| {
                w.num_u64(1);
                w.num_i64(-2);
                w.num_ns_as_us(1_234_567);
                w.obj(|w| {
                    w.key("nested");
                    w.str("ok");
                });
            });
            w.key("empty_obj");
            w.obj(|_| {});
            w.key("empty_arr");
            w.arr(|_| {});
        });
        let text = w.finish();
        let v = parse(&text).expect("round-trip parse");
        assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("a \"quoted\"\nline\\"));
        let list = v.get("list").and_then(|x| x.as_array()).unwrap();
        assert_eq!(list[0].as_u64(), Some(1));
        assert_eq!(list[1].as_f64(), Some(-2.0));
        assert!((list[2].as_f64().unwrap() - 1234.567).abs() < 1e-9);
        assert_eq!(list[3].get("nested").and_then(|x| x.as_str()), Some("ok"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "{\"a\":1,}"] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_standard_forms() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(parse("{\"k\":[{}]}").unwrap().get("k").unwrap().as_array().unwrap().len(), 1);
    }
}
