//! The sharded metrics registry.
//!
//! Three instrument kinds, all updated with relaxed atomics:
//!
//! * [`Counter`] — monotone, sharded: one cache-padded cell per runtime
//!   thread, summed on read. `add(shard, n)` is a relaxed `fetch_add` on a
//!   line no other thread writes, so instrumenting a hot path costs one
//!   uncontended RMW.
//! * [`Gauge`] — a single signed cell for slowly-changing levels (live
//!   tasks, parked tasks). Not sharded: updates are orders of magnitude
//!   rarer than counter bumps.
//! * [`Histogram`] — fixed inclusive upper-bound buckets plus an overflow
//!   bucket. Bounds are chosen at registration; recording is a linear scan
//!   (bucket counts are small) and one relaxed `fetch_add`. Time-valued
//!   histograms are fed from the runtime's coarse clock, never from
//!   `Instant::now` on a hot path.
//!
//! Registration (`Registry::counter` etc.) takes a mutex and is idempotent
//! by name; it happens once at node bring-up. Reads ([`Registry::snapshot`])
//! sum the shards without stopping writers, so totals are exact only at
//! quiescence — same contract as the aggregation statistics had before
//! they were folded in here.

use crate::json::JsonWriter;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

struct CounterCore {
    cells: Box<[CachePadded<AtomicU64>]>,
}

/// A named monotone counter, sharded per runtime thread.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    fn new(shards: usize) -> Self {
        Counter {
            core: Arc::new(CounterCore {
                cells: (0..shards.max(1)).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            }),
        }
    }

    /// Adds `n` on `shard`. Each shard must have a single writing thread
    /// for the cache-padding to pay off; cross-shard writes are still
    /// correct, just slower.
    #[inline]
    pub fn add(&self, shard: usize, n: u64) {
        debug_assert!(shard < self.core.cells.len(), "counter shard out of range");
        self.core.cells[shard].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over all shards (exact at quiescence).
    pub fn sum(&self) -> u64 {
        self.core.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.core.cells.len()
    }

    /// One shard's cell — the per-thread breakdown behind [`Counter::sum`]
    /// (exact at quiescence, like the sum).
    pub fn shard_value(&self, shard: usize) -> u64 {
        self.core.cells[shard].load(Ordering::Relaxed)
    }
}

struct GaugeCore {
    value: AtomicI64,
}

/// A named signed level.
#[derive(Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
}

impl Gauge {
    fn new() -> Self {
        Gauge { core: Arc::new(GaugeCore { value: AtomicI64::new(0) }) }
    }

    #[inline]
    pub fn inc(&self) {
        self.core.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        self.core.value.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.core.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Box<[u64]>,
    /// One count per bound plus a trailing overflow bucket.
    counts: Box<[AtomicU64]>,
}

/// A named fixed-bucket histogram.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must increase");
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.into(),
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            }),
        }
    }

    /// Records `value` into the first bucket whose inclusive upper bound
    /// admits it (`value <= bound`), or the overflow bucket.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx =
            self.core.bounds.iter().position(|&b| value <= b).unwrap_or(self.core.bounds.len());
        self.core.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recordings across all buckets.
    pub fn count(&self) -> u64 {
        self.core.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.core.bounds.to_vec(),
            counts: self.core.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[derive(Default)]
struct Instruments {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// The per-node instrument registry. Cheap to share (`Arc`); hot paths
/// never touch it — they hold [`Counter`]/[`Gauge`]/[`Histogram`] handles
/// resolved once at registration.
pub struct Registry {
    shards: usize,
    inner: Mutex<Instruments>,
}

impl Registry {
    /// `shards` = number of instrumented threads (each counter gets one
    /// cache-padded cell per shard).
    pub fn new(shards: usize) -> Self {
        Registry { shards: shards.max(1), inner: Mutex::new(Instruments::default()) }
    }

    /// Number of shards every counter is created with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Registers (or retrieves) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new(self.shards);
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Registers (or retrieves) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::new();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Registers (or retrieves) the histogram named `name` with the given
    /// inclusive upper bucket bounds. Re-registration ignores `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new(bounds);
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// A point-in-time view of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut snap = MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, c)| (n.clone(), c.sum())).collect(),
            gauges: inner.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(n, h)| h.snapshot(n)).collect(),
        };
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("shards", &self.shards).finish()
    }
}

/// One histogram's frozen buckets: `counts[i]` holds values `<= bounds[i]`
/// (and above the previous bound); `counts[bounds.len()]` is the overflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total recordings.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A serializable point-in-time view of a registry (plus any externally
/// folded-in counters, see [`MetricsSnapshot::push_counter`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds an externally owned counter into the snapshot (used to merge
    /// pre-existing counter sources — e.g. fabric traffic statistics —
    /// without double-counting them in a second live instrument).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Serializes the snapshot as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{"bounds":[..],"counts":[..]}}}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.key("counters");
            w.obj(|w| {
                for (name, v) in &self.counters {
                    w.key(name);
                    w.num_u64(*v);
                }
            });
            w.key("gauges");
            w.obj(|w| {
                for (name, v) in &self.gauges {
                    w.key(name);
                    w.num_i64(*v);
                }
            });
            w.key("histograms");
            w.obj(|w| {
                for h in &self.histograms {
                    w.key(&h.name);
                    w.obj(|w| {
                        w.key("bounds");
                        w.arr(|w| {
                            for &b in &h.bounds {
                                w.num_u64(b);
                            }
                        });
                        w.key("counts");
                        w.arr(|w| {
                            for &c in &h.counts {
                                w.num_u64(c);
                            }
                        });
                    });
                }
            });
        });
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_shard_and_sum() {
        let reg = Registry::new(4);
        let c = reg.counter("x");
        let threads: Vec<_> = (0..4)
            .map(|shard| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(shard, 2);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.sum(), 8000);
        // Idempotent registration returns the same instrument.
        assert_eq!(reg.counter("x").sum(), 8000);
        assert_eq!(reg.snapshot().counter("x"), Some(8000));
    }

    #[test]
    fn gauges_track_levels() {
        let reg = Registry::new(1);
        let g = reg.gauge("lvl");
        g.inc();
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), -2);
        assert_eq!(reg.snapshot().gauge("lvl"), Some(-2));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let reg = Registry::new(1);
        let h = reg.histogram("h", &[10, 20, 30]);
        // Exactly on a bound → that bucket; one past → the next.
        h.record(0);
        h.record(10); // bucket 0 (<=10)
        h.record(11); // bucket 1
        h.record(20); // bucket 1 (<=20)
        h.record(21); // bucket 2
        h.record(30); // bucket 2 (<=30)
        h.record(31); // overflow
        h.record(u64::MAX); // overflow
        let snap = reg.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.bounds, vec![10, 20, 30]);
        assert_eq!(hs.counts, vec![2, 2, 2, 2]);
        assert_eq!(hs.count(), 8);
        assert_eq!(h.count(), 8);
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn histogram_rejects_unsorted_bounds() {
        Registry::new(1).histogram("bad", &[10, 10]);
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let reg = Registry::new(2);
        reg.counter("a.b").add(0, 7);
        reg.gauge("g \"q\"").add(-1);
        reg.histogram("h", &[1, 2]).record(2);
        let mut snap = reg.snapshot();
        snap.push_counter("net.bytes", 1234);
        let v = json::parse(&snap.to_json()).expect("valid json");
        assert_eq!(v.get("counters").and_then(|c| c.get("a.b")).and_then(|x| x.as_u64()), Some(7));
        assert_eq!(
            v.get("counters").and_then(|c| c.get("net.bytes")).and_then(|x| x.as_u64()),
            Some(1234)
        );
        assert_eq!(
            v.get("gauges").and_then(|g| g.get("g \"q\"")).and_then(|x| x.as_f64()),
            Some(-1.0)
        );
        let h = v.get("histograms").and_then(|h| h.get("h")).expect("histogram present");
        assert_eq!(h.get("counts").and_then(|c| c.as_array()).map(|a| a.len()), Some(3));
    }
}
