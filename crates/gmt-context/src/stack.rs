//! Coroutine stacks.
//!
//! Stacks are plain heap allocations (16-byte aligned). The real GMT uses
//! `mmap`ed stacks; we avoid a `libc` dependency, so there is no guard
//! page — instead debug builds write a canary pattern at the low end of
//! every stack and verify it on drop and on demand, which catches the
//! overflows that a guard page would have trapped.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::fmt;

/// Stack alignment required by the x86_64 System V ABI.
pub const STACK_ALIGN: usize = 16;

/// Smallest stack this crate will hand out. Below this even the bootstrap
/// frame plus one Rust call frame may not fit.
pub const MIN_STACK_SIZE: usize = 4 * 1024;

/// Default stack size for GMT tasks. Irregular-application tasks are tiny
/// (a few nested calls around get/put/atomic primitives), but generated
/// user code may use formatting or recursion, so the default is generous.
pub const DEFAULT_STACK_SIZE: usize = 64 * 1024;

/// Number of canary words stamped at the low end of the stack in debug
/// builds.
const CANARY_WORDS: usize = 8;
const CANARY: usize = 0xDEAD_57AC_CAFE_F00D;

/// Errors from stack allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackError {
    /// Requested size was below [`MIN_STACK_SIZE`].
    TooSmall { requested: usize },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::TooSmall { requested } => write!(
                f,
                "requested stack of {requested} bytes is below the minimum of {MIN_STACK_SIZE}"
            ),
        }
    }
}

impl std::error::Error for StackError {}

/// An owned, aligned coroutine stack.
pub struct Stack {
    base: *mut u8,
    size: usize,
}

// The stack is exclusively owned memory; moving it between threads is fine
// as long as no coroutine is currently executing on it, which the owning
// `Coroutine` guarantees.
unsafe impl Send for Stack {}

impl Stack {
    /// Allocates a stack of `size` bytes (rounded up to [`STACK_ALIGN`]).
    pub fn new(size: usize) -> Result<Self, StackError> {
        if size < MIN_STACK_SIZE {
            return Err(StackError::TooSmall { requested: size });
        }
        let size = size.next_multiple_of(STACK_ALIGN);
        let layout = Layout::from_size_align(size, STACK_ALIGN).expect("valid stack layout");
        let base = unsafe { alloc(layout) };
        if base.is_null() {
            handle_alloc_error(layout);
        }
        let stack = Stack { base, size };
        if cfg!(debug_assertions) {
            unsafe {
                let words = stack.base.cast::<usize>();
                for i in 0..CANARY_WORDS {
                    words.add(i).write(CANARY);
                }
            }
        }
        Ok(stack)
    }

    /// One-past-the-end address of the stack: the initial stack pointer.
    pub fn top(&self) -> *mut u8 {
        unsafe { self.base.add(self.size) }
    }

    /// Lowest address of the stack allocation.
    pub fn base(&self) -> *mut u8 {
        self.base
    }

    /// Usable size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Returns `true` if the debug canary at the low end of the stack is
    /// intact. Always `true` in release builds (no canary is written).
    pub fn canary_intact(&self) -> bool {
        if !cfg!(debug_assertions) {
            return true;
        }
        unsafe {
            let words = self.base.cast::<usize>();
            (0..CANARY_WORDS).all(|i| words.add(i).read() == CANARY)
        }
    }

    /// Panics if the canary was clobbered (debug builds only).
    pub fn check_canary(&self) {
        assert!(
            self.canary_intact(),
            "coroutine stack overflow detected: canary at {:p} clobbered (stack size {})",
            self.base,
            self.size
        );
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        if cfg!(debug_assertions) && !std::thread::panicking() {
            self.check_canary();
        }
        let layout = Layout::from_size_align(self.size, STACK_ALIGN).expect("valid stack layout");
        unsafe { dealloc(self.base, layout) };
    }
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack").field("base", &self.base).field("size", &self.size).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_stacks() {
        assert!(matches!(Stack::new(128), Err(StackError::TooSmall { requested: 128 })));
        assert!(matches!(Stack::new(MIN_STACK_SIZE - 1), Err(StackError::TooSmall { .. })));
    }

    #[test]
    fn alignment_and_bounds() {
        let s = Stack::new(MIN_STACK_SIZE).unwrap();
        assert_eq!(s.top() as usize % STACK_ALIGN, 0);
        assert_eq!(s.base() as usize % STACK_ALIGN, 0);
        assert_eq!(s.top() as usize - s.base() as usize, s.size());
        assert!(s.size() >= MIN_STACK_SIZE);
    }

    #[test]
    fn size_rounds_up_to_alignment() {
        let s = Stack::new(MIN_STACK_SIZE + 1).unwrap();
        assert_eq!(s.size() % STACK_ALIGN, 0);
        assert!(s.size() > MIN_STACK_SIZE);
    }

    #[test]
    fn canary_detects_clobber() {
        if !cfg!(debug_assertions) {
            return;
        }
        let s = Stack::new(MIN_STACK_SIZE).unwrap();
        assert!(s.canary_intact());
        unsafe { s.base().write(0xAA) };
        assert!(!s.canary_intact());
        // Restore so drop does not panic.
        unsafe { s.base().cast::<usize>().write(super::CANARY) };
        assert!(s.canary_intact());
    }
}
