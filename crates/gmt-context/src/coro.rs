//! Safe stackful coroutines on top of [`crate::arch`].
//!
//! A [`Coroutine`] owns a [`Stack`](crate::stack::Stack) and a suspended
//! execution context. The owner drives it with [`Coroutine::resume`]; the
//! coroutine body receives a [`Yielder`] and suspends itself with
//! [`Yielder::yield_now`]. This is exactly the shape the GMT worker
//! scheduler needs: a task yields whenever it issues a blocking remote
//! operation and is resumed once the reply arrives.
//!
//! Dropping a suspended coroutine *cancels* it: the coroutine is resumed
//! one final time with a cancellation flag set, `yield_now` raises a
//! private unwind payload, and every live frame on the coroutine stack runs
//! its destructors before the stack is freed.

use crate::arch::{self, StackPointer};
use crate::stack::{Stack, StackError};
use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};

/// Observable state of a coroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoroutineState {
    /// Created or suspended in `yield_now`; can be resumed.
    Suspended,
    /// Currently executing (only observable from inside the coroutine).
    Running,
    /// Ran to completion (or was cancelled); cannot be resumed.
    Finished,
}

/// Result of a [`Coroutine::resume`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// The coroutine suspended itself with [`Yielder::yield_now`].
    Yielded,
    /// The coroutine body returned; its result is available via
    /// [`Coroutine::take_result`].
    Finished,
}

/// Private unwind payload used to cancel a coroutine from `drop`.
struct ForcedUnwind;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Yielded,
    Finished,
    Panicked,
}

/// State shared between the owner side and the coroutine side.
///
/// Boxed so its address is stable across moves of the [`Coroutine`].
struct Shared {
    /// Where the coroutine saves the owner's context during `resume`.
    caller_sp: Cell<StackPointer>,
    /// Where `yield_now` saves the coroutine's context.
    coro_sp: Cell<StackPointer>,
    /// Set by the coroutine side right before switching back.
    status: Cell<Status>,
    /// Panic payload captured from the coroutine body.
    panic: Cell<Option<Box<dyn Any + Send>>>,
    /// Owner requests cancellation (drop of a suspended coroutine).
    cancelling: Cell<bool>,
}

/// Handle passed to the coroutine body for suspending itself.
pub struct Yielder {
    shared: *const Shared,
}

impl Yielder {
    /// Suspends the coroutine; control returns to the `resume` caller.
    ///
    /// When the owner drops the coroutine instead of resuming it normally,
    /// this call does not return — it unwinds the coroutine stack so that
    /// destructors run.
    pub fn yield_now(&self) {
        let shared = unsafe { &*self.shared };
        shared.status.set(Status::Yielded);
        unsafe {
            arch::switch(shared.coro_sp.as_ptr(), shared.caller_sp.get());
        }
        if shared.cancelling.get() {
            // `resume_unwind`, not `panic_any`: cancellation must not run
            // the global panic hook (which would print, and may capture a
            // backtrace using more stack than a small coroutine has).
            panic::resume_unwind(Box::new(ForcedUnwind));
        }
    }

    /// Returns `true` if the owner has requested cancellation.
    ///
    /// Normally invisible to user code (cancellation unwinds out of
    /// `yield_now`), but useful in tests and diagnostics.
    pub fn is_cancelling(&self) -> bool {
        unsafe { &*self.shared }.cancelling.get()
    }
}

/// Start-up package handed to the type-erased entry function.
struct StartPack<F, T> {
    f: Option<F>,
    result: *mut Option<T>,
}

/// A lightweight stackful coroutine producing a `T`.
pub struct Coroutine<T = ()> {
    stack: Stack,
    shared: Box<Shared>,
    /// Keeps the `StartPack` allocation alive until the body consumes it.
    _start: Option<Box<dyn Any>>,
    result: Box<Option<T>>,
    state: CoroutineState,
}

// Safety: construction requires `F: Send + 'static`; while suspended all of
// the coroutine's state lives in owned allocations (`stack`, `shared`,
// `result`) that move with the `Coroutine`. Resuming from a different
// thread is therefore sound for `Send` closures — the GMT runtime still
// keeps every task on its creating worker, as the paper's runtime does.
unsafe impl<T: Send> Send for Coroutine<T> {}

impl<T: 'static> Coroutine<T> {
    /// Creates a coroutine with a dedicated stack of `stack_size` bytes.
    ///
    /// The body does not start executing until the first [`resume`].
    ///
    /// [`resume`]: Coroutine::resume
    pub fn new<F>(stack_size: usize, f: F) -> Result<Self, StackError>
    where
        F: FnOnce(&Yielder) -> T + Send + 'static,
    {
        let stack = Stack::new(stack_size)?;
        Ok(Self::with_stack(stack, f))
    }

    /// Creates a coroutine on a caller-provided (possibly recycled) stack.
    pub fn with_stack<F>(stack: Stack, f: F) -> Self
    where
        F: FnOnce(&Yielder) -> T + Send + 'static,
    {
        let shared = Box::new(Shared {
            caller_sp: Cell::new(core::ptr::null_mut()),
            coro_sp: Cell::new(core::ptr::null_mut()),
            status: Cell::new(Status::Yielded),
            panic: Cell::new(None),
            cancelling: Cell::new(false),
        });
        let mut result: Box<Option<T>> = Box::new(None);
        let mut start: Box<StartPack<F, T>> =
            Box::new(StartPack { f: Some(f), result: &mut *result as *mut Option<T> });
        let init_sp = unsafe {
            arch::init_stack(
                stack.top(),
                entry_thunk::<F, T>,
                (&mut *start as *mut StartPack<F, T>).cast(),
                (&*shared as *const Shared as *mut Shared).cast(),
            )
        };
        shared.coro_sp.set(init_sp);
        Coroutine { stack, shared, _start: Some(start), result, state: CoroutineState::Suspended }
    }

    /// Runs the coroutine until it yields or finishes.
    ///
    /// Panics raised by the coroutine body are re-raised here (like
    /// `JoinHandle::join` followed by `resume_unwind`).
    ///
    /// # Panics
    ///
    /// Panics if the coroutine has already finished.
    pub fn resume(&mut self) -> Resume {
        assert_eq!(
            self.state,
            CoroutineState::Suspended,
            "resume called on a coroutine that is not suspended"
        );
        self.state = CoroutineState::Running;
        unsafe {
            arch::switch(self.shared.caller_sp.as_ptr(), self.shared.coro_sp.get());
        }
        match self.shared.status.get() {
            Status::Yielded => {
                self.state = CoroutineState::Suspended;
                Resume::Yielded
            }
            Status::Finished => {
                self.state = CoroutineState::Finished;
                self._start = None;
                Resume::Finished
            }
            Status::Panicked => {
                self.state = CoroutineState::Finished;
                self._start = None;
                let payload = self.shared.panic.take().expect("panicked coroutine without payload");
                panic::resume_unwind(payload);
            }
        }
    }

    /// Current state as seen by the owner.
    pub fn state(&self) -> CoroutineState {
        self.state
    }

    /// `true` once the body has returned (or the coroutine was cancelled).
    pub fn is_finished(&self) -> bool {
        self.state == CoroutineState::Finished
    }

    /// Takes the value returned by the body, if it finished normally.
    pub fn take_result(&mut self) -> Option<T> {
        self.result.take()
    }

    /// Size of the coroutine's stack in bytes.
    pub fn stack_size(&self) -> usize {
        self.stack.size()
    }

    /// Verifies the debug stack canary (no-op in release builds).
    pub fn check_stack(&self) {
        self.stack.check_canary();
    }

    /// Consumes a finished coroutine and returns its stack for reuse.
    ///
    /// Recycling stacks is how the GMT runtime keeps task creation cheap
    /// (the paper pre-allocates and recycles all task contexts).
    ///
    /// # Panics
    ///
    /// Panics if the coroutine has not finished.
    pub fn into_stack(mut self) -> Stack {
        assert!(self.is_finished(), "cannot recycle the stack of an unfinished coroutine");
        self.state = CoroutineState::Finished; // keep drop from cancelling
        std::mem::replace(&mut self.stack, Stack::new(crate::MIN_STACK_SIZE).unwrap())
    }
}

impl<T> Drop for Coroutine<T> {
    fn drop(&mut self) {
        if self.state != CoroutineState::Suspended {
            return;
        }
        // Cancel: resume once with the cancellation flag set; `yield_now`
        // unwinds the coroutine stack and the entry thunk reports Finished.
        self.shared.cancelling.set(true);
        unsafe {
            arch::switch(self.shared.caller_sp.as_ptr(), self.shared.coro_sp.get());
        }
        match self.shared.status.get() {
            Status::Finished => {}
            Status::Panicked => {
                // A destructor (or pre-first-resume body) panicked during
                // cancellation. Don't double-panic; drop the payload.
                drop(self.shared.panic.take());
            }
            Status::Yielded => {
                unreachable!("coroutine yielded while being cancelled")
            }
        }
        self.state = CoroutineState::Finished;
    }
}

/// Type-erased first function executed on the coroutine stack.
unsafe extern "sysv64" fn entry_thunk<F, T>(start: *mut u8, shared: *mut u8) -> !
where
    F: FnOnce(&Yielder) -> T + Send + 'static,
    T: 'static,
{
    let shared = unsafe { &*(shared as *const Shared) };
    let start = unsafe { &mut *(start as *mut StartPack<F, T>) };
    let yielder = Yielder { shared };

    // A coroutine created and then immediately dropped is cancelled before
    // its body ever ran; skip the body entirely in that case.
    if !shared.cancelling.get() {
        let f = start.f.take().expect("coroutine body already taken");
        let result_slot = start.result;
        match panic::catch_unwind(AssertUnwindSafe(|| f(&yielder))) {
            Ok(value) => {
                unsafe { *result_slot = Some(value) };
                shared.status.set(Status::Finished);
            }
            Err(payload) => {
                if payload.is::<ForcedUnwind>() {
                    shared.status.set(Status::Finished);
                } else {
                    shared.panic.set(Some(payload));
                    shared.status.set(Status::Panicked);
                }
            }
        }
    } else {
        shared.status.set(Status::Finished);
    }

    // Final switch back to the owner; this context must never run again.
    let mut dead: StackPointer = core::ptr::null_mut();
    unsafe {
        arch::switch(&mut dead, shared.caller_sp.get());
    }
    unreachable!("finished coroutine was resumed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_to_completion_without_yield() {
        let mut co = Coroutine::new(16 * 1024, |_y| 123u32).unwrap();
        assert_eq!(co.resume(), Resume::Finished);
        assert_eq!(co.take_result(), Some(123));
        assert!(co.is_finished());
    }

    #[test]
    fn yields_roundtrip_preserve_locals() {
        let mut co = Coroutine::new(32 * 1024, |y| {
            let mut v = vec![1u64];
            for i in 2..=5 {
                y.yield_now();
                v.push(i);
            }
            v.iter().sum::<u64>()
        })
        .unwrap();
        for _ in 0..4 {
            assert_eq!(co.resume(), Resume::Yielded);
        }
        assert_eq!(co.resume(), Resume::Finished);
        assert_eq!(co.take_result(), Some(1 + 2 + 3 + 4 + 5));
    }

    #[test]
    fn interleaves_many_coroutines() {
        const N: usize = 64;
        const ROUNDS: usize = 10;
        let counter = Arc::new(AtomicUsize::new(0));
        let mut coros: Vec<Coroutine<usize>> = (0..N)
            .map(|i| {
                let counter = Arc::clone(&counter);
                Coroutine::new(16 * 1024, move |y| {
                    let mut mine = 0;
                    for _ in 0..ROUNDS {
                        mine += 1;
                        counter.fetch_add(1, Ordering::Relaxed);
                        y.yield_now();
                    }
                    mine * (i + 1)
                })
                .unwrap()
            })
            .collect();
        // Round-robin scheduling, exactly like a GMT worker.
        for _ in 0..ROUNDS {
            for co in &mut coros {
                assert_eq!(co.resume(), Resume::Yielded);
            }
        }
        for (i, co) in coros.iter_mut().enumerate() {
            assert_eq!(co.resume(), Resume::Finished);
            assert_eq!(co.take_result(), Some(ROUNDS * (i + 1)));
        }
        assert_eq!(counter.load(Ordering::Relaxed), N * ROUNDS);
    }

    #[test]
    fn panic_propagates_to_resumer() {
        let mut co = Coroutine::new(16 * 1024, |y| {
            y.yield_now();
            panic!("boom from coroutine");
        })
        .unwrap();
        assert_eq!(co.resume(), Resume::Yielded);
        let err = panic::catch_unwind(AssertUnwindSafe(|| co.resume())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom from coroutine");
        assert!(co.is_finished());
        assert_eq!(co.take_result(), None::<()>);
    }

    #[test]
    fn drop_before_first_resume_is_clean() {
        let dropped = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&dropped);
        let co = Coroutine::new(16 * 1024, move |_y| {
            // Body never runs; the capture must still be dropped.
            d.fetch_add(100, Ordering::Relaxed);
        })
        .unwrap();
        drop(co);
        // The closure never ran...
        assert_eq!(dropped.load(Ordering::Relaxed), 0);
        // ...and its captured Arc was released (strong count back to 1).
        assert_eq!(Arc::strong_count(&dropped), 1);
    }

    #[test]
    fn drop_while_suspended_runs_destructors() {
        struct Tracker(Arc<AtomicUsize>);
        impl Drop for Tracker {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&drops);
        let mut co = Coroutine::new(64 * 1024, move |y| {
            let _t1 = Tracker(Arc::clone(&d));
            let _t2 = Tracker(Arc::clone(&d));
            y.yield_now();
            y.yield_now(); // never reached: cancelled at first suspend point
            drop(d);
        })
        .unwrap();
        assert_eq!(co.resume(), Resume::Yielded);
        drop(co);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn results_are_per_coroutine() {
        // Rc inside the coroutine exercises non-Send internals; only the
        // closure itself must be Send.
        let mut a = Coroutine::new(16 * 1024, |y| {
            let local = Rc::new(7u64);
            y.yield_now();
            *local * 2
        })
        .unwrap();
        let mut b = Coroutine::new(16 * 1024, |y| {
            let local = Rc::new(9u64);
            y.yield_now();
            *local * 3
        })
        .unwrap();
        assert_eq!(a.resume(), Resume::Yielded);
        assert_eq!(b.resume(), Resume::Yielded);
        assert_eq!(b.resume(), Resume::Finished);
        assert_eq!(a.resume(), Resume::Finished);
        assert_eq!(a.take_result(), Some(14));
        assert_eq!(b.take_result(), Some(27));
    }

    #[test]
    fn stack_recycling() {
        let mut co = Coroutine::new(64 * 1024, |_y| ()).unwrap();
        assert_eq!(co.resume(), Resume::Finished);
        let stack = co.into_stack();
        assert_eq!(stack.size(), 64 * 1024);
        let mut co2 = Coroutine::with_stack(stack, |y| {
            y.yield_now();
            5u8
        });
        assert_eq!(co2.resume(), Resume::Yielded);
        assert_eq!(co2.resume(), Resume::Finished);
        assert_eq!(co2.take_result(), Some(5));
    }

    #[test]
    #[should_panic(expected = "not suspended")]
    fn resume_after_finish_panics() {
        let mut co = Coroutine::new(16 * 1024, |_y| ()).unwrap();
        assert_eq!(co.resume(), Resume::Finished);
        let _ = co.resume();
    }

    #[test]
    fn deep_yield_from_nested_calls() {
        fn recurse(y: &Yielder, depth: u32) -> u64 {
            if depth == 0 {
                y.yield_now();
                1
            } else {
                recurse(y, depth - 1) + 1
            }
        }
        let mut co = Coroutine::new(128 * 1024, |y| recurse(y, 64)).unwrap();
        assert_eq!(co.resume(), Resume::Yielded);
        assert_eq!(co.resume(), Resume::Finished);
        assert_eq!(co.take_result(), Some(65));
    }

    #[test]
    fn resume_from_another_thread() {
        let mut co = Coroutine::new(32 * 1024, |y| {
            let mut sum = 0u64;
            for i in 0..4 {
                sum += i;
                y.yield_now();
            }
            sum
        })
        .unwrap();
        assert_eq!(co.resume(), Resume::Yielded);
        let mut co = std::thread::spawn(move || {
            assert_eq!(co.resume(), Resume::Yielded);
            co
        })
        .join()
        .unwrap();
        assert_eq!(co.resume(), Resume::Yielded);
        assert_eq!(co.resume(), Resume::Yielded);
        assert_eq!(co.resume(), Resume::Finished);
        assert_eq!(co.take_result(), Some(1 + 2 + 3));
    }
}
