//! Lightweight stackful coroutines for the GMT runtime.
//!
//! GMT hides remote-memory latency by multiplexing up to 1024 user-level
//! tasks on every worker thread. Whenever a task issues a blocking remote
//! operation the worker switches to another ready task; the switch must
//! therefore be *much* cheaper than the network round trip it hides
//! (~500 cycles vs ~10^6 cycles in the paper, Table III).
//!
//! The paper achieves this with custom context-switch primitives that skip
//! the expensive parts of the libc `swapcontext` path (most notably the
//! `sigprocmask` system call). This crate reproduces that design:
//!
//! * [`arch`] — a hand-written context switch that saves/restores only the
//!   callee-saved register set and the stack pointer (x86_64 System V),
//! * [`stack`] — heap-allocated coroutine stacks with debug-mode canaries,
//! * [`coro`] — the safe [`Coroutine`]/[`Yielder`] API on top,
//! * [`time`] — cycle counters used to reproduce Table III.
//!
//! # Example
//!
//! ```
//! use gmt_context::{Coroutine, Resume};
//!
//! let mut co = Coroutine::new(16 * 1024, |y| {
//!     let mut acc = 0u64;
//!     for i in 0..3 {
//!         acc += i;
//!         y.yield_now();
//!     }
//!     acc
//! })
//! .unwrap();
//!
//! assert_eq!(co.resume(), Resume::Yielded); // i = 0
//! assert_eq!(co.resume(), Resume::Yielded); // i = 1
//! assert_eq!(co.resume(), Resume::Yielded); // i = 2
//! assert_eq!(co.resume(), Resume::Finished);
//! assert_eq!(co.take_result(), Some(3));
//! ```

pub mod arch;
pub mod coro;
pub mod stack;
pub mod time;

pub use coro::{Coroutine, CoroutineState, Resume, Yielder};
pub use stack::{Stack, StackError, DEFAULT_STACK_SIZE, MIN_STACK_SIZE};
pub use time::{cycles_now, CycleTimer};
