//! Architecture-specific context switch.
//!
//! The switch saves only what the System V x86_64 ABI requires a callee to
//! preserve — `rbx`, `rbp`, `r12`–`r15` — plus the stack pointer; the
//! instruction pointer travels implicitly through the `ret` at the end of
//! the switch. There is deliberately no floating-point state, no segment
//! state and, unlike `swapcontext(3)`, **no signal-mask save/restore** —
//! that system call is what makes the libc path two orders of magnitude
//! slower than this one.
//!
//! Safety model: a context is a raw stack pointer ([`StackPointer`]) that
//! must point either at a frame previously written by [`switch`] or at a
//! frame produced by [`init_stack`]. The safe wrapper in [`crate::coro`]
//! maintains this invariant.

use core::arch::naked_asm;

/// An opaque saved execution context: the stack pointer of a suspended
/// coroutine (or of a suspended scheduler). The six callee-saved registers
/// live on the stack just below this address.
pub type StackPointer = *mut u8;

/// Entry function invoked on a fresh coroutine stack.
///
/// Receives the two data words planted in the initial frame by
/// [`init_stack`] (conventionally: closure environment and control block).
pub type EntryFn = unsafe extern "sysv64" fn(*mut u8, *mut u8) -> !;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;

    /// Saves the current context into `*save` and resumes the context in
    /// `restore`.
    ///
    /// Layout of a saved frame, from the saved stack pointer upward:
    /// `[r15][r14][r13][r12][rbx][rbp][return address]`.
    ///
    /// # Safety
    ///
    /// * `save` must be valid for a write of one pointer.
    /// * `restore` must be a context produced by a previous `switch` save
    ///   or by [`init_stack`], whose stack is still alive and not currently
    ///   executing on any thread.
    #[unsafe(naked)]
    pub unsafe extern "sysv64" fn switch(save: *mut StackPointer, restore: StackPointer) {
        naked_asm!(
            // Save callee-saved registers on the current stack.
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            // Publish the suspended context.
            "mov [rdi], rsp",
            // Adopt the target context.
            "mov rsp, rsi",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First instructions ever executed on a fresh coroutine stack.
    ///
    /// [`init_stack`] plants the two data words in `r12`/`r13`; this shim
    /// moves them into the first two argument registers and tail-jumps into
    /// the Rust entry point. `jmp` (not `call`) keeps the stack layout
    /// exactly as a normal function prologue expects (`rsp % 16 == 8`).
    ///
    /// # Safety
    ///
    /// Never call this from Rust. It must only be entered by `switch`
    /// returning into a frame planted by `init_stack`, with `rbx` holding
    /// the entry function pointer and `r12`/`r13` its two arguments.
    #[unsafe(naked)]
    pub unsafe extern "sysv64" fn bootstrap_trampoline() {
        naked_asm!(
            "mov rdi, r12",
            "mov rsi, r13",
            "mov rax, rbx", // entry function pointer
            "jmp rax",
        )
    }
}

#[cfg(not(target_arch = "x86_64"))]
compile_error!(
    "gmt-context currently implements its custom context switch for x86_64 only \
     (the reproduction host); port `arch.rs` to add another architecture"
);

pub use imp::{bootstrap_trampoline, switch};

/// Number of machine words in the bootstrap frame:
/// `r15 r14 r13 r12 rbx rbp` + return address + one alignment pad word.
///
/// The pad keeps the stack pointer congruent to `8 (mod 16)` when control
/// arrives in the entry function, exactly as if it had been entered by a
/// `call` — compilers rely on that for aligned SSE spills, and getting it
/// wrong only blows up when something (e.g. the panic machinery) issues a
/// `movaps` relative to `rsp`.
const FRAME_WORDS: usize = 8;

/// Prepares a fresh stack so that the first [`switch`] into the returned
/// [`StackPointer`] lands in `entry(data0, data1)`.
///
/// `stack_top` must be the one-past-the-end address of a live stack
/// allocation, 16-byte aligned.
///
/// # Safety
///
/// `stack_top` must point at least `FRAME_WORDS * 8` writable bytes *below*
/// it, owned by the caller for the lifetime of the coroutine, and `entry`
/// must never return (it must `switch` away instead).
pub unsafe fn init_stack(
    stack_top: *mut u8,
    entry: EntryFn,
    data0: *mut u8,
    data1: *mut u8,
) -> StackPointer {
    debug_assert_eq!(stack_top as usize % 16, 0, "stack top must be 16-byte aligned");
    let top = stack_top.cast::<usize>();
    // Frame grows downward from the top; index FRAME_WORDS-1 is the pad.
    //
    // After `switch` pops the six registers, `ret` consumes the return
    // address word and jumps into `bootstrap_trampoline` with
    // `rsp == stack_top - 8`, i.e. `rsp % 16 == 8` — the alignment every
    // function entered via `call` expects. The trampoline `jmp`s (does not
    // push), so `entry` observes the same call-style alignment.
    let frame = top.sub(FRAME_WORDS);
    frame.add(0).write(0); // r15
    frame.add(1).write(0); // r14
    frame.add(2).write(data1 as usize); // r13
    frame.add(3).write(data0 as usize); // r12
    frame.add(4).write(entry as usize); // rbx: real entry, read by trampoline
    frame.add(5).write(0); // rbp: terminate backtraces
    frame.add(6).write(bootstrap_trampoline as *const () as usize); // return address
    frame.add(7).write(0); // alignment pad (see FRAME_WORDS)
    frame.cast::<u8>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Stack;
    use std::cell::Cell;

    thread_local! {
        static SEEN: Cell<usize> = const { Cell::new(0) };
    }

    /// One-shot entry: records `value`, then switches back to the caller.
    ///
    /// `main_slot` points at the variable the starting `switch` saved the
    /// caller's context into — `switch` publishes `*save` before it
    /// transfers control, so the slot is already filled when we run.
    unsafe extern "sysv64" fn entry_once(value: *mut u8, main_slot: *mut u8) -> ! {
        SEEN.with(|s| s.set(value as usize));
        let main_ctx = unsafe { *main_slot.cast::<StackPointer>() };
        let mut dead: StackPointer = core::ptr::null_mut();
        unsafe { switch(&mut dead, main_ctx) };
        unreachable!("resumed a finished raw context");
    }

    #[test]
    fn raw_switch_roundtrip() {
        let stack = Stack::new(32 * 1024).unwrap();
        let mut main_ctx: StackPointer = core::ptr::null_mut();
        let ctx = unsafe {
            init_stack(
                stack.top(),
                entry_once,
                42usize as *mut u8,
                (&mut main_ctx as *mut StackPointer).cast(),
            )
        };
        unsafe { switch(&mut main_ctx, ctx) };
        assert_eq!(SEEN.with(|s| s.get()), 42);
    }

    #[test]
    fn raw_switch_many_stacks() {
        // Start a handful of one-shot contexts back to back on one thread.
        for i in 0..32usize {
            let stack = Stack::new(32 * 1024).unwrap();
            let mut main_ctx: StackPointer = core::ptr::null_mut();
            let ctx = unsafe {
                init_stack(
                    stack.top(),
                    entry_once,
                    i as *mut u8,
                    (&mut main_ctx as *mut StackPointer).cast(),
                )
            };
            unsafe { switch(&mut main_ctx, ctx) };
            assert_eq!(SEEN.with(|s| s.get()), i);
        }
    }
}
