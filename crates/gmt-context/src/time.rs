//! Cycle-accurate timing used to reproduce the paper's Table III
//! (context-switch latency in clock cycles).

/// Reads the processor timestamp counter.
///
/// On the paper's measurement methodology the switch cost is reported in
/// clock cycles; `rdtsc` is the natural counter on x86_64 (constant-rate on
/// every CPU of the last decade).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub fn cycles_now() -> u64 {
    // Safety: RDTSC is unprivileged and has no memory effects.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// A simple elapsed-cycles timer.
#[derive(Debug, Clone, Copy)]
pub struct CycleTimer {
    start: u64,
}

impl CycleTimer {
    /// Starts the timer.
    #[inline(always)]
    pub fn start() -> Self {
        CycleTimer { start: cycles_now() }
    }

    /// Cycles elapsed since [`CycleTimer::start`].
    #[inline(always)]
    pub fn elapsed(&self) -> u64 {
        cycles_now().saturating_sub(self.start)
    }
}

/// Estimates the TSC frequency in Hz by spinning for ~50 ms.
///
/// Used only for converting cycle measurements to human-readable rates in
/// benchmark reports; the paper's tables stay in cycles.
pub fn estimate_tsc_hz() -> u64 {
    use std::time::{Duration, Instant};
    let wall = Instant::now();
    let c0 = cycles_now();
    let target = Duration::from_millis(50);
    while wall.elapsed() < target {
        std::hint::spin_loop();
    }
    let cycles = cycles_now().saturating_sub(c0);
    let nanos = wall.elapsed().as_nanos().max(1) as u64;
    cycles.saturating_mul(1_000_000_000) / nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_are_monotonic_enough() {
        let a = cycles_now();
        let b = cycles_now();
        // rdtsc is constant-rate and monotonic on a single core.
        assert!(b >= a);
    }

    #[test]
    fn timer_measures_work() {
        let t = CycleTimer::start();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        assert!(t.elapsed() > 0);
    }

    #[test]
    fn tsc_frequency_is_plausible() {
        let hz = estimate_tsc_hz();
        // Any machine this runs on is between 100 MHz and 10 GHz.
        assert!(hz > 100_000_000, "TSC estimate too low: {hz}");
        assert!(hz < 10_000_000_000, "TSC estimate too high: {hz}");
    }
}
