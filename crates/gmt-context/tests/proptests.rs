//! Property-based tests for the coroutine substrate: arbitrary
//! interleavings of yields across many coroutines must preserve each
//! task's sequential semantics.

use gmt_context::{Coroutine, Resume};
use proptest::prelude::*;

proptest! {
    /// Each coroutine computes a seeded arithmetic sequence, yielding at
    /// arbitrary points; resumed in an arbitrary (valid) order, every
    /// coroutine still produces its exact sequential result.
    #[test]
    fn interleaving_preserves_per_task_results(
        seeds in proptest::collection::vec(any::<u32>(), 1..12),
        yields in proptest::collection::vec(0usize..6, 1..12),
        schedule in proptest::collection::vec(any::<usize>(), 0..100),
    ) {
        let n = seeds.len().min(yields.len());
        let mut expected = Vec::new();
        let mut coros = Vec::new();
        for i in 0..n {
            let seed = seeds[i];
            let y_count = yields[i];
            // Reference: the computation without any yields.
            let mut acc = seed as u64;
            for k in 0..(y_count as u64 + 3) {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            expected.push(acc);
            coros.push(
                Coroutine::new(32 * 1024, move |yielder| {
                    let mut acc = seed as u64;
                    for k in 0..(y_count as u64 + 3) {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                        if k < y_count as u64 {
                            yielder.yield_now();
                        }
                    }
                    acc
                })
                .unwrap(),
            );
        }
        // Arbitrary schedule, then drain everything round-robin.
        for &pick in &schedule {
            let i = pick % n;
            if !coros[i].is_finished() {
                let _ = coros[i].resume();
            }
        }
        for co in &mut coros {
            while !co.is_finished() {
                let _ = co.resume();
            }
        }
        for (i, co) in coros.iter_mut().enumerate() {
            prop_assert_eq!(co.take_result(), Some(expected[i]));
        }
    }

    /// Dropping coroutines at arbitrary progress points always runs
    /// their live destructors exactly once (no leaks, no double drops).
    #[test]
    fn cancellation_drops_exactly_once(
        progress in proptest::collection::vec(0usize..8, 1..10),
    ) {
        use std::sync::atomic::{AtomicI64, Ordering};
        use std::sync::Arc;
        let balance = Arc::new(AtomicI64::new(0));
        struct Guard(Arc<AtomicI64>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let mut coros = Vec::new();
        for _ in &progress {
            let b = Arc::clone(&balance);
            coros.push(
                Coroutine::new(32 * 1024, move |y| {
                    b.fetch_add(1, Ordering::Relaxed);
                    let _g = Guard(b);
                    for _ in 0..6 {
                        y.yield_now();
                    }
                })
                .unwrap(),
            );
        }
        for (co, &p) in coros.iter_mut().zip(&progress) {
            for _ in 0..p {
                if co.is_finished() {
                    break;
                }
                let _ = co.resume();
            }
        }
        drop(coros);
        // Every Guard created was dropped: +1 for each started body,
        // -1 for each drop -> balance returns to zero.
        prop_assert_eq!(balance.load(Ordering::Relaxed), 0);
    }

    /// Stack recycling across arbitrarily many generations never corrupts
    /// results.
    #[test]
    fn stack_recycling_generations(values in proptest::collection::vec(any::<u64>(), 1..20)) {
        let mut stack = Some(gmt_context::Stack::new(32 * 1024).unwrap());
        for &v in &values {
            let mut co = Coroutine::with_stack(stack.take().unwrap(), move |y| {
                let doubled = v.wrapping_mul(2);
                y.yield_now();
                doubled
            });
            prop_assert_eq!(co.resume(), Resume::Yielded);
            prop_assert_eq!(co.resume(), Resume::Finished);
            prop_assert_eq!(co.take_result(), Some(v.wrapping_mul(2)));
            stack = Some(co.into_stack());
        }
    }
}
