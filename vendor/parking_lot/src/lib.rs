//! Minimal offline shim for `parking_lot` 0.12: `Mutex` and `RwLock`
//! with parking_lot's panic-free (non-poisoning) `lock()`/`read()`/
//! `write()` signatures, backed by `std::sync`. See `vendor/README.md`.

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// Mutual exclusion primitive; `lock()` returns the guard directly
/// (poisoning is swallowed, as in the real parking_lot).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard { guard: e.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: StdReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
