//! Minimal offline shim for the `rand` 0.8 API subset this workspace
//! uses: `SmallRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`.
//! The generator is xoshiro256++ seeded through splitmix64 — fast,
//! high-quality, and deterministic per seed (which is all the callers
//! rely on; they never assume rand's exact stream).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(hi as $u) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator (stand-in for rand 0.8's
    /// `SmallRng`, which is xoshiro256++ on 64-bit platforms too).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let s: usize = rng.gen_range(4..=6);
            assert!((4..=6).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }
}
