//! Minimal offline shim for the subset of `crossbeam` 0.8 used by this
//! workspace: `queue::{ArrayQueue, SegQueue}`, `channel` (unbounded MPMC)
//! and `utils::CachePadded`. See `vendor/README.md`.

pub mod channel;
pub mod queue;
pub mod utils;
