//! Unbounded MPMC channel with the crossbeam-channel API surface this
//! workspace uses: cloneable senders *and* receivers, `send`,
//! `recv`/`try_recv`/`recv_timeout`, `len`, and disconnect semantics
//! (send fails once all receivers are gone; recv fails once the channel
//! is empty and all senders are gone).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half; clone freely.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; clone freely (clones compete for messages).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.inner.lock().push_back(value);
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::Relaxed);
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // the disconnect.
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.inner.lock();
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.inner.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.inner.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) =
                self.inner.ready.wait_timeout(q, deadline - now).unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u32>();
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
