//! Concurrent queues: a lock-free bounded MPMC ring (`ArrayQueue`, the
//! classic Vyukov algorithm, same as the real crossbeam) and a simple
//! mutex-backed unbounded queue (`SegQueue`).

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::utils::CachePadded;

struct Slot<T> {
    /// Sequence stamp: `index` when empty and writable by the producer of
    /// lap `index`, `index + 1` when full, `index + capacity` after pop.
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC queue.
pub struct ArrayQueue<T> {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    buffer: Box<[Slot<T>]>,
}

unsafe impl<T: Send> Send for ArrayQueue<T> {}
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `cap` elements.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be non-zero");
        let buffer = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        ArrayQueue {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            buffer,
        }
    }

    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }

    /// Attempts to push, returning the value back if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let cap = self.buffer.len();
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[tail % cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if stamp.wrapping_add(cap) == tail.wrapping_add(1) {
                // One full lap behind: the slot still holds an element of
                // the previous lap — the queue is full (unless a pop
                // raced us; re-check head to be sure).
                let head = self.head.load(Ordering::Relaxed);
                if head.wrapping_add(cap) == tail {
                    return Err(value);
                }
                std::hint::spin_loop();
                tail = self.tail.load(Ordering::Relaxed);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest element, if any.
    pub fn pop(&self) -> Option<T> {
        let cap = self.buffer.len();
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[head % cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == head.wrapping_add(1) {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.stamp.store(head.wrapping_add(cap), Ordering::Release);
                        return Some(value);
                    }
                    Err(h) => head = h,
                }
            } else if stamp == head {
                // Slot not yet written for this lap: empty (unless a push
                // raced us; re-check tail).
                let tail = self.tail.load(Ordering::Relaxed);
                if tail == head {
                    return None;
                }
                std::hint::spin_loop();
                head = self.head.load(Ordering::Relaxed);
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Current number of elements (racy snapshot, like crossbeam's).
    pub fn len(&self) -> usize {
        loop {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            if self.tail.load(Ordering::SeqCst) == tail {
                return tail.wrapping_sub(head);
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue").field("capacity", &self.capacity()).finish()
    }
}

/// Unbounded MPMC queue. The real crossbeam implementation is a
/// lock-free linked list of segments; for this shim a mutex-protected
/// `VecDeque` gives the same semantics (the workspace's hot paths go
/// through `ArrayQueue`, not here).
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    pub fn new() -> Self {
        SegQueue { inner: Mutex::new(VecDeque::new()) }
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn push(&self, value: T) {
        self.guard().push_back(value);
    }

    pub fn pop(&self) -> Option<T> {
        self.guard().pop_front()
    }

    pub fn len(&self) -> usize {
        self.guard().len()
    }

    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegQueue").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn array_queue_fifo_and_capacity() {
        let q = ArrayQueue::new(3);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.push(4), Err(4));
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(1));
        q.push(4).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn array_queue_mpmc_stress() {
        let q = Arc::new(ArrayQueue::new(8));
        let mut handles = Vec::new();
        const PER: u64 = 20_000;
        for t in 0..3u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = t * PER + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut sum = 0u64;
        let mut got = 0u64;
        while got < 3 * PER {
            if let Some(v) = q.pop() {
                sum += v;
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = 3 * PER;
        assert_eq!(sum, n * (n - 1) / 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn seg_queue_fifo() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn array_queue_drops_leftovers() {
        let v = Arc::new(());
        let q = ArrayQueue::new(4);
        q.push(Arc::clone(&v)).unwrap();
        q.push(Arc::clone(&v)).unwrap();
        drop(q);
        assert_eq!(Arc::strong_count(&v), 1);
    }
}
