//! `CachePadded`: aligns (and pads) a value to a cache-line boundary so
//! neighbouring values never share a line (no false sharing).

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes (two 64-byte lines: adjacent-line
/// prefetchers on x86 pull pairs of lines, as the real crossbeam notes).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}
