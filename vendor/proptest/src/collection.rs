//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s with a length drawn from `size` and elements
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for collection::vec");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_and_elements() {
        let mut rng = TestRng::for_case("collection", 0);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
