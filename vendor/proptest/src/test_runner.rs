//! Test-runner configuration and the deterministic per-case RNG.

/// Subset of proptest's `Config`: only `cases` is meaningful here.
/// `max_shrink_iters` exists for source compatibility with the real crate
/// (this shim reports failing inputs without shrinking them).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases each property runs.
    pub cases: u32,
    /// Accepted, unused: the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Deterministic RNG: seeded from (test path, case index) so every run
/// of the suite explores the same cases — failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        let mut sm = h ^ ((case as u64) << 32 | 0x5bf0_3635);
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// xoshiro256++ step.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_path_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 4);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_case("t", 0);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }
}
