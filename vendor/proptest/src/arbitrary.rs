//! `any::<T>()` — full-range generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Generates any value of `T`, uniformly over its full range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
