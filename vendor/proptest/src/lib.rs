//! Minimal offline shim for the subset of `proptest` 1.x this workspace
//! uses. Each `proptest!` test runs `ProptestConfig::cases` randomized
//! cases with inputs drawn from the given strategies; the RNG seed is a
//! deterministic function of (test path, case index), so failures
//! reproduce across runs. **No shrinking** — a failing case reports the
//! case index and assertion message only. See `vendor/README.md`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(*va == *vb) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                va,
                vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(*va == *vb) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                va,
                vb
            ));
        }
    }};
}

/// Inequality assertion for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if *va == *vb {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                va
            ));
        }
    }};
}

/// Chooses uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]`, any number of `#[test] fn name(pat in
/// strategy, ...) { body }` items, doc comments, and attributes such as
/// `#[should_panic]`.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ( $($strat,)+ );
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ( $($pat,)+ ) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
