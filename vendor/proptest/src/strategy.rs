//! The `Strategy` trait and combinators: ranges, tuples, `Just`,
//! `prop_map`, `prop_flat_map`, and `Union` (for `prop_oneof!`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (helper for `prop_oneof!` so element types unify).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(rng.below(span) as $u) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy", 0);
        for _ in 0..5_000 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u8..3).generate(&mut rng);
            assert!(w < 3);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_case("strategy", 1);
        let s = (1u64..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let fm = (1u64..4).prop_flat_map(|n| (Just(n), 0u64..n));
        for _ in 0..100 {
            let (n, k) = fm.generate(&mut rng);
            assert!(k < n);
        }
        let u = crate::prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
    }
}
