//! Minimal offline shim for the subset of `criterion` 0.5 this
//! workspace uses. Each benchmark is auto-calibrated to a target
//! measurement time, run for `sample_size` samples, and reported as
//! `median ns/iter` (plus throughput when declared) on stdout — no
//! statistics beyond median/min/max, no HTML reports, no comparisons.
//! See `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark iteration, used to report a
/// rate alongside the raw time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// (sample median, iters per sample) of the last `iter` call.
    result: Option<Sample>,
    sample_size: usize,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    median_ns_per_iter: f64,
    min_ns_per_iter: f64,
    max_ns_per_iter: f64,
}

/// Target time one benchmark spends measuring (after calibration).
const TARGET_MEASURE: Duration = Duration::from_millis(300);

impl Bencher {
    /// Measures `f`, storing per-iteration timing for the caller.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up + calibrate: find an iteration count that takes a
        // measurable slice of time.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 24 {
                break;
            }
            iters_per_sample *= 4;
        }
        let samples = self.sample_size.max(3);
        let per_sample_target = TARGET_MEASURE / samples as u32;
        // Refine the per-sample iteration count toward the target slice.
        {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let one = start.elapsed().max(Duration::from_nanos(1));
            let scale = per_sample_target.as_secs_f64() / one.as_secs_f64();
            if scale > 1.5 {
                iters_per_sample = ((iters_per_sample as f64) * scale.min(64.0)) as u64;
            }
            iters_per_sample = iters_per_sample.max(1);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            per_iter.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result = Some(Sample {
            median_ns_per_iter: per_iter[per_iter.len() / 2],
            min_ns_per_iter: per_iter[0],
            max_ns_per_iter: *per_iter.last().unwrap(),
        });
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn run_one(
    full_id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { result: None, sample_size };
    f(&mut b);
    match b.result {
        Some(s) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!(
                        "  thrpt: {}",
                        human_rate(n as f64 * 1e9 / s.median_ns_per_iter, "elem")
                    )
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  thrpt: {}", human_rate(n as f64 * 1e9 / s.median_ns_per_iter, "B"))
                }
                None => String::new(),
            };
            println!(
                "{full_id:<50} time: [{} {} {}]{rate}",
                human_time(s.min_ns_per_iter),
                human_time(s.median_ns_per_iter),
                human_time(s.max_ns_per_iter),
            );
        }
        None => println!("{full_id:<50} (no measurement: closure never called iter)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, None, self.sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.throughput, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
