#!/usr/bin/env bash
# Benchmark regression gate.
#
# Runs the gated benchmarks (aggregation_emit, reliability_e2e,
# ctx_switch, remote_ops), writes the medians to BENCH_pr.json, and compares every
# benchmark listed in the committed baseline against the fresh run. A
# median more than BENCH_GATE_THRESHOLD percent (default 15) slower than
# baseline fails the gate. Benchmarks not listed in the baseline are
# recorded but not gated.
#
# Usage:
#   ci/bench_gate.sh            compare against bench/baselines/BENCH_baseline.json
#   ci/bench_gate.sh baseline   rewrite the baseline from a fresh run
#
# The baseline is refreshed deliberately (run `ci/bench_gate.sh baseline`
# on a quiet machine and commit the diff), never automatically.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BENCH_GATE_BASELINE:-bench/baselines/BENCH_baseline.json}
OUT=${BENCH_GATE_OUT:-BENCH_pr.json}
THRESHOLD=${BENCH_GATE_THRESHOLD:-15}
BENCHES=(aggregation reliability ctx_switch remote_ops)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for bench in "${BENCHES[@]}"; do
    echo "== cargo bench -p gmt-bench --bench $bench =="
    cargo bench -p gmt-bench --bench "$bench" 2>&1 | tee -a "$raw"
done

# The criterion shim prints:  <id>  time: [<min> <u> <median> <u> <max> <u>]
# Normalize the median to nanoseconds, one "<id> <ns>" pair per line.
pairs=$(awk '
    / time: \[/ {
        id = $1
        match($0, /\[[^]]*\]/)
        split(substr($0, RSTART + 1, RLENGTH - 2), t, " ")
        val = t[3]; unit = t[4]
        if (unit == "ns")      ns = val
        else if (unit == "µs") ns = val * 1e3
        else if (unit == "ms") ns = val * 1e6
        else if (unit == "s")  ns = val * 1e9
        else next
        printf "%s %.3f\n", id, ns
    }' "$raw")

if [ -z "$pairs" ]; then
    echo "bench gate: no benchmark output parsed" >&2
    exit 1
fi

# The benches honor GMT_TRANSPORT (sim fabric, TCP loopback or shm
# rings). Tag every id with a non-default transport so runs against
# different backends can never be mistaken for one another in artifacts
# or baselines — shm-tagged ids ride the same record-without-gating path
# as tcp ones.
TRANSPORT=${GMT_TRANSPORT:-sim}
if [ "$TRANSPORT" != "sim" ] && [ -n "$TRANSPORT" ]; then
    pairs=$(printf '%s\n' "$pairs" | awk -v t="$TRANSPORT" '{ printf "%s/%s %s\n", t, $1, $2 }')
fi

# Every parsed median, gated or not, so a regression is attributable to
# the exact benchmark (and new benchmarks are visible before they ever
# enter the baseline).
echo
echo "== per-benchmark medians =="
printf '%s\n' "$pairs" | awk '{ printf "  %-55s %14.1f ns\n", $1, $2 }'

# Same-host transport comparison: storms with explicit /tcp_loopback and
# /shm variants measure the same workload over all three wires in one
# run — one line per id present on all three.
echo
echo "== sim vs tcp-loopback vs shm (same host) =="
printf '%s\n' "$pairs" | awk '
    { ns[$1] = $2 }
    END {
        found = 0
        for (id in ns) {
            if (id !~ /\/tcp_loopback$/) continue
            base = substr(id, 1, length(id) - length("/tcp_loopback"))
            shm = base "/shm"
            if (!(base in ns) || !(shm in ns)) continue
            printf "  %-35s sim %11.1f ns | tcp %11.1f ns (%.1fx) | shm %11.1f ns (%.1fx; %.1fx vs tcp)\n",
                base, ns[base], ns[id], ns[id] / ns[base], ns[shm], ns[shm] / ns[base], ns[id] / ns[shm]
            found = 1
        }
        if (!found) print "  (no benchmark ran on all three transports in this run)"
    }'

# Render "<id> <ns>" pairs as the JSON artifact (one entry per line, the
# same shape the baseline is committed in).
write_json() {
    awk 'BEGIN { print "{" ; print "  \"median_ns\": {" }
         { lines[NR] = sprintf("    \"%s\": %s", $1, $2) }
         END {
             for (i = 1; i <= NR; i++) printf "%s%s\n", lines[i], (i < NR ? "," : "")
             print "  }" ; print "}"
         }'
}

if [ "${1:-}" = "baseline" ]; then
    mkdir -p "$(dirname "$BASELINE")"
    # The committed baseline stays sim-only: the real-wire variants
    # (…/tcp_loopback, …/shm) are recorded in every artifact and
    # compared in the table above, but too noisy to gate at the
    # threshold — EXPERIMENTS.md tracks those numbers instead.
    printf '%s\n' "$pairs" | awk '$1 !~ /\/(tcp_loopback|shm)$/' | write_json > "$BASELINE"
    echo "bench gate: baseline written to $BASELINE (sim ids only)"
    exit 0
fi

printf '%s\n' "$pairs" | write_json > "$OUT"
echo "bench gate: results written to $OUT"

# The committed baseline is a *sim* baseline; numbers from another
# transport are recorded for tracking but never gated against it.
if [ "$TRANSPORT" != "sim" ] && [ -n "$TRANSPORT" ]; then
    echo "bench gate: transport '$TRANSPORT' is not gated (sim baseline); results recorded only"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "bench gate: no baseline at $BASELINE; nothing to compare" >&2
    exit 1
fi

# Pull "<id> <ns>" pairs back out of a baseline/artifact JSON file.
json_pairs() {
    sed -n 's/^ *"\([^"]*\)": \([0-9.][0-9.]*\),\{0,1\}$/\1 \2/p' "$1"
}

echo
json_pairs "$BASELINE" | awk -v thr="$THRESHOLD" -v prs="$pairs" '
    BEGIN {
        n = split(prs, lines, "\n")
        for (i = 1; i <= n; i++) {
            split(lines[i], f, " ")
            pr[f[1]] = f[2]
        }
    }
    {
        id = $1; base = $2
        seen[id] = 1
        if (!(id in pr)) {
            printf "%-55s MISSING from PR run\n", id
            status = 1
            next
        }
        delta = (pr[id] - base) / base * 100
        flag = (delta > thr) ? "REGRESSION" : "ok"
        if (delta > thr) status = 1
        printf "%-55s base %12.1f ns   pr %12.1f ns   %+7.1f%%  %s\n", id, base, pr[id], delta, flag
    }
    END {
        for (id in pr) if (!(id in seen))
            printf "%-55s pr %12.1f ns   (new, not gated)\n", id, pr[id]
        if (status) {
            printf "\nbench gate: FAILED (median regression over %s%%)\n", thr
        } else {
            printf "\nbench gate: ok (threshold %s%%)\n", thr
        }
        exit status
    }'
