//! Streaming string store: the paper's CHMA workload as an application
//! (§V-D) — the access pattern of virus scanners, spam filters and
//! information-retrieval pipelines that "store, filter and manipulate
//! large amounts of streaming data".
//!
//! Populates a hash map in global memory from a string pool, then streams
//! probe/reverse/store operations against it from tasks spread across the
//! cluster, comparing against the MPI-style owner-compute baseline.
//!
//! ```text
//! cargo run --release --example string_store
//! ```

use gmt::core::{Cluster, Config};
use gmt::kernels::chma::{gmt_chma_access, gmt_chma_populate, ChmaConfig, GmtHashMap};
use gmt::kernels::chma_mpi::mpi_chma;
use std::time::Instant;

fn main() {
    let cfg = ChmaConfig { entries: 4_096, pool: 2_048, tasks: 64, steps: 64, seed: 2014 };
    println!(
        "hash map: {} entries; pool: {} strings; W={} tasks x L={} steps",
        cfg.entries, cfg.pool, cfg.tasks, cfg.steps
    );

    // --- GMT ------------------------------------------------------------
    let cluster = Cluster::start(2, Config::small()).expect("start cluster");
    let (populated, result, ms) = cluster.node(0).run(move |ctx| {
        let map = GmtHashMap::alloc(ctx, cfg.entries);
        let populated = gmt_chma_populate(ctx, &map, &cfg);
        let t = Instant::now();
        let result = gmt_chma_access(ctx, &map, &cfg);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        map.free(ctx);
        (populated, result, ms)
    });
    let gmt_msgs = cluster.net_stats().total().sent_msgs;
    cluster.shutdown();
    println!(
        "GMT: populated {} strings; {} accesses -> {} hits / {} misses / {} re-inserts in {:.1} ms",
        populated, result.accesses, result.hits, result.misses, result.inserts, ms
    );
    println!("GMT network messages: {gmt_msgs} (aggregated commands)");

    // --- MPI-style baseline ----------------------------------------------
    let t = Instant::now();
    let (mpi, traffic) = mpi_chma(&cfg, 2);
    let mpi_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "MPI baseline: {} accesses -> {} hits / {} misses in {:.1} ms",
        mpi.accesses, mpi.hits, mpi.misses, mpi_ms
    );
    println!(
        "MPI network messages: {} ({} bytes avg) — fine-grained request/reply per probe",
        traffic.sent_msgs,
        traffic.sent_bytes.checked_div(traffic.sent_msgs).unwrap_or(0),
    );
    println!("string store OK");
}
