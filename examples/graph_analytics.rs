//! Graph analytics on GMT: the paper's motivating workload (§I, §V-B/C).
//!
//! Generates a random graph, uploads it into the cluster's global memory,
//! then runs the two graph kernels of the paper's evaluation:
//! Breadth First Search (Graph500-style) and Graph Random Walk —
//! validating both against sequential references and reporting MTEPS.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use gmt::core::{Cluster, Config};
use gmt::graph::{uniform_random, DistGraph, GraphSpec};
use gmt::kernels::bfs::gmt_bfs;
use gmt::kernels::grw::{gmt_grw, seq_grw};
use std::time::Instant;

fn main() {
    let spec = GraphSpec { vertices: 2_000, avg_degree: 8, seed: 42 };
    println!("generating random graph: {} vertices, avg degree {}", spec.vertices, spec.avg_degree);
    let csr = uniform_random(spec);
    let reference_levels = csr.bfs_levels(0);
    let reference_walk = seq_grw(&csr, 1_000, 16, 7);

    let cluster = Cluster::start(3, Config::small()).expect("start cluster");
    let csr2 = csr.clone();
    let (bfs, grw, bfs_ms, grw_ms) = cluster.node(0).run(move |ctx| {
        let g = DistGraph::from_csr(ctx, &csr2);
        println!("uploaded: {} vertices / {} edges in global memory", g.vertices(), g.edges());

        let t = Instant::now();
        let bfs = gmt_bfs(ctx, &g, 0);
        let bfs_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let grw = gmt_grw(ctx, &g, 1_000, 16, 7);
        let grw_ms = t.elapsed().as_secs_f64() * 1e3;

        g.free(ctx);
        (bfs, grw, bfs_ms, grw_ms)
    });
    cluster.shutdown();

    // Validate against the sequential references.
    for (v, &l) in reference_levels.iter().enumerate() {
        let expect = if l == u64::MAX { -1 } else { l as i64 };
        assert_eq!(bfs.levels[v], expect, "BFS level mismatch at vertex {v}");
    }
    assert_eq!(grw.checksum, reference_walk.checksum, "random-walk checksum mismatch");

    let max_level = bfs.levels.iter().max().copied().unwrap_or(0);
    println!(
        "BFS:  visited {} vertices, {} levels, {} edges in {:.1} ms ({:.3} MTEPS)",
        bfs.visited,
        max_level + 1,
        bfs.traversed_edges,
        bfs_ms,
        bfs.traversed_edges as f64 / bfs_ms / 1e3
    );
    println!(
        "GRW:  {} walkers x {} steps, {} edges in {:.1} ms ({:.3} MTEPS), checksum verified",
        grw.walkers,
        grw.steps_per_walker,
        grw.traversed_edges,
        grw_ms,
        grw.traversed_edges as f64 / grw_ms / 1e3
    );
    println!("graph analytics OK");
}
