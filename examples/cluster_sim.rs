//! Simulated machine shoot-out: what the paper's Figure 8 looks like as
//! an API.
//!
//! Runs the same fine-grained workload (a blocking-put stream, the
//! paper's Figure 5 microbenchmark) through the discrete-event simulator
//! on every machine model — GMT, GMT without aggregation, MPI, UPC and
//! the Cray XMT — and prints modeled bandwidth and message counts.
//!
//! ```text
//! cargo run --release --example cluster_sim
//! ```

use gmt::sim::{simulate, MachineParams, OpPattern, Phase};

fn main() {
    let nodes = 4;
    let machines = [
        MachineParams::gmt(),
        MachineParams::gmt_no_aggregation(),
        MachineParams::mpi(),
        MachineParams::upc(),
        MachineParams::xmt(),
    ];
    println!("workload: 4096 tasks/node x 64 blocking 8-byte puts, {nodes} nodes\n");
    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>12}",
        "machine", "payload MB/s", "messages", "wire bytes", "sim ms"
    );
    for params in machines {
        // Same task-level workload for every machine; the machines differ
        // in how many tasks they can keep in flight and what messages
        // cost them.
        let tasks = match params.name {
            "MPI" | "UPC" => 32, // one blocking stream per core
            "XMT" => 128,        // hardware streams
            _ => 4096,           // GMT software multithreading
        };
        let ops = 4096 * 64 / tasks; // same total ops per node
        let phase = Phase::all_nodes(tasks, ops, OpPattern::remote_put(8));
        let r = simulate(params, nodes, phase, 99);
        println!(
            "{:<10} {:>14.2} {:>12} {:>14} {:>12.2}",
            params.name,
            r.payload_mb_s(),
            r.messages,
            r.wire_bytes,
            r.elapsed_ns as f64 / 1e6
        );
    }
    println!("\n(run `cargo run --release -p gmt-bench --bin figures -- all` for the full paper reproduction)");
}
