//! Community detection pipeline: connected components + PageRank.
//!
//! The paper's introduction motivates GMT with "complex network
//! analysis, community detection, data analytics" — this example chains
//! the two extension kernels into exactly such a pipeline: find the
//! undirected components of a sparse random graph, then rank the
//! vertices of the largest component.
//!
//! ```text
//! cargo run --release --example community_detection
//! ```

use gmt::core::{Cluster, Config};
use gmt::graph::{uniform_random, DistGraph, GraphSpec};
use gmt::kernels::cc::{gmt_cc, seq_cc};
use gmt::kernels::pagerank::{gmt_pagerank, seq_pagerank, PageRankConfig};
use std::collections::HashMap;

fn main() {
    // Sparse graph: avg degree 1 leaves many components.
    let spec = GraphSpec { vertices: 600, avg_degree: 1, seed: 7 };
    let csr = uniform_random(spec);
    println!("graph: {} vertices, {} edges", csr.vertices(), csr.edges());

    let cluster = Cluster::start(2, Config::small()).expect("start cluster");
    let csr2 = csr.clone();
    let (labels, ranks) = cluster.node(0).run(move |ctx| {
        let g = DistGraph::from_csr(ctx, &csr2);
        let labels = gmt_cc(ctx, &g);
        let ranks = gmt_pagerank(ctx, &g, PageRankConfig { damping: 0.85, iterations: 15 });
        g.free(ctx);
        (labels, ranks)
    });
    cluster.shutdown();

    // Validate against the sequential references.
    assert_eq!(labels, seq_cc(&csr), "component labels diverge from union-find");
    let reference = seq_pagerank(&csr, PageRankConfig { damping: 0.85, iterations: 15 });
    for (a, b) in ranks.iter().zip(&reference) {
        assert!((a - b).abs() < 1e-6, "rank mismatch: {a} vs {b}");
    }

    // Component census.
    let mut sizes: HashMap<u64, usize> = HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_default() += 1;
    }
    let mut census: Vec<(u64, usize)> = sizes.into_iter().collect();
    census.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    println!("components: {}", census.len());
    for (label, size) in census.iter().take(5) {
        println!("  component {label}: {size} vertices");
    }

    // Top-ranked vertices of the biggest community.
    let (big_label, _) = census[0];
    let mut members: Vec<(u64, f64)> = ranks
        .iter()
        .enumerate()
        .filter(|&(v, _)| labels[v] == big_label)
        .map(|(v, &r)| (v as u64, r))
        .collect();
    members.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top vertices of the largest community:");
    for (v, r) in members.iter().take(5) {
        println!("  vertex {v}: rank {r:.6}");
    }
    println!("community detection OK");
}
