//! Quickstart: the GMT API in five minutes.
//!
//! Starts a small in-process "cluster", allocates global arrays with
//! different distributions, and exercises every primitive of the paper's
//! Table I: put/get (blocking and non-blocking), typed values, atomics,
//! waitCommands and parFor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gmt::core::{Cluster, Config, Distribution, SpawnPolicy};

fn main() {
    // Two GMT node instances inside this process, each with workers,
    // helpers and a communication server (paper Figure 1).
    let cluster = Cluster::start(2, Config::small()).expect("start cluster");

    let histogram = cluster.node(0).run(|ctx| {
        println!("running as task zero on node {} of {}", ctx.node_id(), ctx.nodes());

        // -- PGAS allocation (gmt_alloc) --------------------------------
        // A block-distributed array of 1024 u64 counters...
        let counters = ctx.alloc(1024 * 8, Distribution::Partition);
        // ...and a node-local scratch area.
        let local = ctx.alloc(4096, Distribution::Local);

        // -- Data movement (gmt_put / gmt_get) --------------------------
        ctx.put(&local, 0, b"hello global memory").unwrap();
        let mut readback = [0u8; 19];
        ctx.get(&local, 0, &mut readback).unwrap();
        assert_eq!(&readback, b"hello global memory");

        // Non-blocking flavors: issue many, then wait once.
        for i in 0..1024u64 {
            ctx.put_value_nb::<u64>(&counters, i, 0);
        }
        ctx.wait_commands().unwrap(); // gmt_waitCommands

        // -- Loop parallelism (gmt_parFor) ------------------------------
        // 4096 increments spread over every node of the cluster; each
        // task owns 8 iterations (chunk_size).
        ctx.parfor(SpawnPolicy::Partition, 4096, 8, move |ctx, i| {
            let slot = (i * 31) % 1024; // irregular access pattern
                                        // -- Fine-grained synchronization (gmt_atomicAdd) ------------
            ctx.atomic_add(&counters, slot * 8, 1).unwrap();
        });

        // -- Verify with a parallel reduction ----------------------------
        let total = ctx.alloc(8, Distribution::Local);
        ctx.parfor(SpawnPolicy::Partition, 1024, 32, move |ctx, i| {
            let v = ctx.get_value::<u64>(&counters, i).unwrap();
            ctx.atomic_add(&total, 0, v as i64).unwrap();
        });
        let sum = ctx.atomic_add(&total, 0, 0).unwrap();
        assert_eq!(sum, 4096);

        // A tiny histogram of counter values to show irregular spread.
        let mut hist = [0u32; 8];
        for i in 0..1024 {
            let v = ctx.get_value::<u64>(&counters, i).unwrap() as usize;
            hist[v.min(7)] += 1;
        }

        ctx.free(counters);
        ctx.free(local);
        ctx.free(total);
        hist
    });

    println!("counter-value histogram: {histogram:?}");
    println!("quickstart OK");
    cluster.shutdown();
}
